"""Symbolic per-thread evaluation of a kernel over its block CFG.

The race detector and the memory lints need to know, for every shared-
or global-memory access, *which word each thread touches*.  This module
computes that by abstract interpretation: every register value is
tracked as

    per-thread concrete component  +  linear combination of uniform
                                      unknowns

where the concrete component is a numpy vector over all threads of one
block (``tid`` is ``arange(block_threads)``) and the uniform unknowns
are symbols that are *equal across threads* but whose value is not
known statically -- the block index ``ctaid``, loop-carried values
(phi symbols), and results of opaque operations on uniform inputs.

This split is what makes the analyses work on real kernels:

* **bank conflicts** and **address distinctness** are invariant under a
  uniform shift, so they are decidable whenever the per-thread
  component is known -- even inside loops where the base address is a
  loop-carried unknown (the matmul tile loop's ``kk``);
* **divergence** falls out for free: a value is uniform iff its
  concrete component is constant across threads (the unknowns are
  uniform by construction).

Thread-variant values that cannot be tracked (data loaded from
thread-dependent addresses, nonlinear combinations) degrade to a
``TOP`` marker and the dependent analyses degrade gracefully (an
"unanalyzable" note instead of a wrong verdict).

Where every operand is fully concrete, opcodes are evaluated through
the functional model's own dispatch tables (:mod:`repro.sim.functional`)
so the abstraction is bit-exact exactly where it claims totality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..isa.cfg import EXIT_PC_SENTINEL, basic_block_leaders, build_cfg
from ..isa.instructions import Imm, Instruction, Pred, Reg, Sreg
from ..sim.functional import _ALU, _CMP, _SFU

#: A uniform-unknown symbol.  Tuples keep them hashable and stable:
#: ``("ctaid",)`` the block index, ``("phi", pc, kind, index)`` a join
#: point, ``("load", pc)`` / ``("op", pc)`` opaque uniform results.
Term = Tuple[object, ...]

CTAID: Term = ("ctaid",)


class SymVal:
    """One register's abstract value (see module docstring).

    ``vec is None`` means thread-variant unknown (TOP).  Otherwise the
    value is ``vec + sum(coeff * unknown for unknown, coeff in syms)``
    with every unknown uniform across threads.
    """

    __slots__ = ("vec", "syms")

    def __init__(self, vec: Optional[np.ndarray],
                 syms: Optional[Dict[Term, float]] = None) -> None:
        self.vec = vec
        self.syms: Dict[Term, float] = syms or {}

    # -- constructors --------------------------------------------------------

    @staticmethod
    def const(value: float, n: int) -> "SymVal":
        return SymVal(np.full(n, float(value)))

    @staticmethod
    def from_vec(vec: np.ndarray) -> "SymVal":
        return SymVal(np.asarray(vec, dtype=np.float64))

    @staticmethod
    def unknown(term: Term, n: int) -> "SymVal":
        return SymVal(np.zeros(n), {term: 1.0})

    @staticmethod
    def top() -> "SymVal":
        return SymVal(None)

    # -- predicates ----------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.vec is None

    @property
    def is_uniform(self) -> bool:
        """Equal across threads (the unknowns are uniform by nature)."""
        if self.vec is None:
            return False
        return bool(len(self.vec) == 0 or np.all(self.vec == self.vec[0]))

    @property
    def is_const(self) -> bool:
        return self.is_uniform and not self.syms

    def const_value(self) -> float:
        assert self.is_const and self.vec is not None
        return float(self.vec[0]) if len(self.vec) else 0.0

    def equals(self, other: "SymVal") -> bool:
        if self.is_top or other.is_top:
            return self.is_top and other.is_top
        assert self.vec is not None and other.vec is not None
        return (self.syms == other.syms
                and np.array_equal(self.vec, other.vec))

    def __repr__(self) -> str:
        if self.is_top:
            return "SymVal(TOP)"
        terms = " + ".join(f"{c:g}*{t}" for t, c in sorted(
            self.syms.items(), key=lambda kv: repr(kv[0])))
        head = "uniform" if self.is_uniform else "per-thread"
        return f"SymVal({head}{' + ' + terms if terms else ''})"


def _merge_syms(a: Dict[Term, float], b: Dict[Term, float],
                sign: float) -> Dict[Term, float]:
    out = dict(a)
    for term, coeff in b.items():
        new = out.get(term, 0.0) + sign * coeff
        if new == 0.0:
            out.pop(term, None)
        else:
            out[term] = new
    return out


def _add(a: SymVal, b: SymVal, sign: float = 1.0) -> SymVal:
    if a.is_top or b.is_top:
        return SymVal.top()
    assert a.vec is not None and b.vec is not None
    return SymVal(a.vec + sign * b.vec, _merge_syms(a.syms, b.syms, sign))


def _scale(a: SymVal, factor: float) -> SymVal:
    if a.is_top:
        return SymVal.top()
    assert a.vec is not None
    return SymVal(a.vec * factor,
                  {t: c * factor for t, c in a.syms.items()
                   if c * factor != 0.0})


class PredVal:
    """Abstract predicate value: concrete bool vector or unknown.

    ``vec`` is the per-thread truth vector when concrete; otherwise
    None, with ``assume_uniform`` recording whether the unknown value
    is provably equal across threads.
    """

    __slots__ = ("vec", "assume_uniform")

    def __init__(self, vec: Optional[np.ndarray],
                 assume_uniform: bool = False) -> None:
        self.vec = vec
        self.assume_uniform = assume_uniform

    @staticmethod
    def concrete(vec: np.ndarray) -> "PredVal":
        return PredVal(np.asarray(vec, dtype=bool))

    @staticmethod
    def unknown(uniform: bool) -> "PredVal":
        return PredVal(None, uniform)

    @property
    def is_uniform(self) -> bool:
        if self.vec is None:
            return self.assume_uniform
        return bool(len(self.vec) == 0 or np.all(self.vec == self.vec[0]))

    def equals(self, other: "PredVal") -> bool:
        if self.vec is None or other.vec is None:
            return (self.vec is None and other.vec is None
                    and self.assume_uniform == other.assume_uniform)
        return np.array_equal(self.vec, other.vec)


# ---------------------------------------------------------------------------
# Facts produced
# ---------------------------------------------------------------------------


@dataclass
class MemAccess:
    """One static memory instruction with its resolved address picture.

    Attributes:
        pc: Program counter of the instruction.
        op: Opcode (LDS/STS/LDG/STG/LDC/LDT).
        space: Address space ("shared"/"global"/"const"/"texture").
        is_store: Whether the access writes.
        mask: Per-thread participation (block execution mask refined by
            a concrete guard); an over-approximation when ``exact`` is
            False.
        exact: True when ``mask`` is exact (every controlling predicate
            on the way here was statically concrete).
        addr_vec: Per-thread word-address component (instruction offset
            included), or None when the address is thread-variant
            unknown.
        addr_syms: Uniform-unknown terms completing the address.
    """

    pc: int
    op: str
    space: str
    is_store: bool
    mask: np.ndarray
    exact: bool
    addr_vec: Optional[np.ndarray]
    addr_syms: Dict[Term, float] = field(default_factory=dict)

    @property
    def analyzable(self) -> bool:
        """Per-thread address component statically known."""
        return self.addr_vec is not None

    @property
    def base_resolves(self) -> bool:
        """Address fully known per block (only ``ctaid`` unknowns)."""
        return self.analyzable and all(t == CTAID for t in self.addr_syms)

    def addresses(self, ctaid: int = 0) -> np.ndarray:
        """Masked per-thread word addresses for one block index.

        Only valid when :attr:`base_resolves`; loop-carried unknowns
        have no defined value to plug in.
        """
        assert self.addr_vec is not None
        base = self.addr_syms.get(CTAID, 0.0) * ctaid
        return (self.addr_vec[self.mask] + base).astype(np.int64)


@dataclass
class BranchFact:
    """Divergence verdict for one conditional branch.

    ``uniform`` is True when provably uniform over the executing
    threads, False when provably divergent, None when unknown (treated
    as potentially divergent).
    """

    pc: int
    uniform: Optional[bool]


@dataclass
class BarrierFact:
    """Execution picture of one BAR instruction."""

    pc: int
    mask: np.ndarray
    exact: bool


@dataclass
class SymbolicFacts:
    """Everything the symbolic evaluator learned about one kernel."""

    n_threads: int
    warp_size: int
    grid: int
    mem: List[MemAccess]
    branches: Dict[int, BranchFact]
    barriers: List[BarrierFact]
    block_masks: Dict[int, np.ndarray]
    block_exact: Dict[int, bool]
    reachable_blocks: List[int]

    def smem_accesses(self) -> List[MemAccess]:
        return [m for m in self.mem if m.space == "shared"]

    def global_accesses(self) -> List[MemAccess]:
        return [m for m in self.mem if m.space == "global"]


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------

#: Linear opcodes that also work on symbolic (uniform-unknown) values.
_LINEAR = {"IADD": 1.0, "FADD": 1.0, "ISUB": -1.0, "FSUB": -1.0}


class _State:
    """Register/predicate state at one program point."""

    __slots__ = ("regs", "preds", "mask", "exact")

    def __init__(self, regs: List[SymVal], preds: List[PredVal],
                 mask: np.ndarray, exact: bool) -> None:
        self.regs = regs
        self.preds = preds
        self.mask = mask
        self.exact = exact

    def copy(self) -> "_State":
        return _State(list(self.regs), list(self.preds),
                      self.mask.copy(), self.exact)


def _join_reg(a: SymVal, b: SymVal, phi: Term) -> SymVal:
    if a.equals(b):
        return a
    if a.is_top or b.is_top:
        return SymVal.top()
    if a.is_uniform and b.is_uniform:
        assert a.vec is not None
        return SymVal.unknown(phi, len(a.vec))
    return SymVal.top()


def _join_pred(a: PredVal, b: PredVal) -> PredVal:
    if a.equals(b):
        return a
    return PredVal.unknown(a.is_uniform and b.is_uniform)


def _guarded_reg(old: SymVal, new: SymVal, gvec: Optional[np.ndarray],
                 phi: Term) -> SymVal:
    """Value after a write of ``new`` under guard truth vector ``gvec``.

    ``gvec`` is None when the guard predicate is statically unknown
    (join conservatively); all-true means an unguarded write.  The
    block execution mask deliberately does *not* gate writes: a state
    describes the threads flowing along this path, and threads on other
    paths are merged at CFG join points.
    """
    if gvec is None:
        return _join_reg(old, new, phi)
    if bool(gvec.all()):
        return new
    if not bool(gvec.any()):
        return old
    if not old.is_top and not new.is_top and old.syms == new.syms:
        assert old.vec is not None and new.vec is not None
        return SymVal(np.where(gvec, new.vec, old.vec), dict(old.syms))
    return _join_reg(old, new, phi)


def _guarded_pred(old: PredVal, new: PredVal,
                  gvec: Optional[np.ndarray]) -> PredVal:
    if gvec is None:
        return _join_pred(old, new)
    if bool(gvec.all()):
        return new
    if not bool(gvec.any()):
        return old
    if old.vec is not None and new.vec is not None:
        return PredVal.concrete(np.where(gvec, new.vec, old.vec))
    return _join_pred(old, new)


class SymbolicEvaluator:
    """Run the abstract interpretation for one kernel + launch shape.

    Args:
        kernel: The assembled :class:`~repro.isa.kernel.Kernel`.
        n_threads: Threads per block (``launch.block.count``).
        warp_size: Lanes per warp (from the GPU configuration).
        grid: Number of blocks (``launch.grid.count``).
    """

    def __init__(self, kernel, n_threads: int, warp_size: int,
                 grid: int) -> None:
        self.kernel = kernel
        self.instructions = kernel.instructions
        self.n = int(n_threads)
        self.warp_size = int(warp_size)
        self.grid = int(grid)
        self.leaders = basic_block_leaders(self.instructions)
        self.cfg = build_cfg(self.instructions)
        self._block_end: Dict[int, int] = {}
        for i, leader in enumerate(self.leaders):
            end = self.leaders[i + 1] if i + 1 < len(self.leaders) \
                else len(self.instructions)
            self._block_end[leader] = end
        self.specials = self._make_specials()

    def _make_specials(self) -> Dict[str, SymVal]:
        n = self.n
        tid = np.arange(n, dtype=np.float64)
        return {
            "tid": SymVal.from_vec(tid),
            "ctaid": SymVal.unknown(CTAID, n),
            "ntid": SymVal.const(n, n),
            "nctaid": SymVal.const(self.grid, n),
            "laneid": SymVal.from_vec(tid % self.warp_size),
            "warpid": SymVal.from_vec(tid // self.warp_size),
            # gtid = ctaid * ntid + tid (matches repro.sim.core).
            "gtid": SymVal(tid.copy(), {CTAID: float(n)}),
        }

    # -- operand reading -----------------------------------------------------

    def _read(self, state: _State, operand) -> SymVal:
        if isinstance(operand, Reg):
            if 0 <= operand.index < len(state.regs):
                return state.regs[operand.index]
            return SymVal.top()
        if isinstance(operand, Imm):
            return SymVal.const(operand.value, self.n)
        if isinstance(operand, Sreg):
            return self.specials[operand.name]
        return SymVal.top()

    def _read_pred(self, state: _State, pred: Pred) -> PredVal:
        if 0 <= pred.index < len(state.preds):
            return state.preds[pred.index]
        return PredVal.unknown(False)

    # -- transfer functions --------------------------------------------------

    def _eval_alu(self, pc: int, inst: Instruction,
                  state: _State) -> SymVal:
        op = inst.op
        srcs = [self._read(state, s) for s in inst.srcs]
        concrete = srcs and all(not s.is_top and not s.syms for s in srcs)
        # Fully concrete operands: defer to the functional model's own
        # dispatch so the abstraction is bit-exact where it is total.
        if concrete and op in _ALU:
            return SymVal(_ALU[op]([s.vec for s in srcs]))
        if concrete and op in _SFU:
            return SymVal(_SFU[op]([s.vec for s in srcs]))
        if concrete and op == "FDIV":
            assert srcs[0].vec is not None and srcs[1].vec is not None
            with np.errstate(divide="ignore", invalid="ignore"):
                out = srcs[0].vec / srcs[1].vec
            return SymVal(np.nan_to_num(out, nan=0.0, posinf=3.4e38,
                                        neginf=-3.4e38))
        if any(s.is_top for s in srcs):
            return SymVal.top()
        if op == "MOV" and srcs:
            return srcs[0]
        if op in _LINEAR and len(srcs) == 2:
            return _add(srcs[0], srcs[1], _LINEAR[op])
        if op in ("IMUL", "FMUL") and len(srcs) == 2:
            a, b = srcs
            if a.is_const:
                return _scale(b, a.const_value())
            if b.is_const:
                return _scale(a, b.const_value())
        if op in ("IMAD", "FFMA") and len(srcs) == 3:
            a, b, c = srcs
            prod: Optional[SymVal] = None
            if a.is_const:
                prod = _scale(b, a.const_value())
            elif b.is_const:
                prod = _scale(a, b.const_value())
            if prod is not None:
                return _add(prod, c)
        if op == "SHL" and len(srcs) == 2 and srcs[1].is_const:
            shift = int(srcs[1].const_value())
            if 0 <= shift < 32:
                return _scale(srcs[0], float(1 << shift))
        if op == "IMOD" and len(srcs) == 2 and srcs[1].is_const \
                and srcs[1].const_value() > 0:
            # (vec + k*u) % m == vec % m when every coefficient k is a
            # multiple of m: the uniform terms drop out of the residue
            # (assuming integer-valued unknowns, true for addresses).
            a, m = srcs[0], int(srcs[1].const_value())
            if a.vec is not None and all(
                    c == int(c) and int(c) % m == 0
                    for c in a.syms.values()):
                ints = a.vec.astype(np.int64)
                if np.all(a.vec == ints):
                    return SymVal((ints % m).astype(np.float64))
        if op == "SELP":
            sel_pred = getattr(inst, "sel_pred", None)
            sel = self._read_pred(state, sel_pred) \
                if isinstance(sel_pred, Pred) else PredVal.unknown(False)
            if len(srcs) == 2 and sel.vec is not None \
                    and srcs[0].syms == srcs[1].syms:
                assert srcs[0].vec is not None and srcs[1].vec is not None
                return SymVal(np.where(sel.vec, srcs[0].vec, srcs[1].vec),
                              dict(srcs[0].syms))
            if all(s.is_uniform for s in srcs) and sel.is_uniform:
                return SymVal.unknown(("op", pc), self.n)
            return SymVal.top()
        # Opaque result: uniform when every input is.
        if srcs and all(s.is_uniform for s in srcs):
            return SymVal.unknown(("op", pc), self.n)
        return SymVal.top()

    def _eval_setp(self, inst: Instruction, state: _State) -> PredVal:
        cmp = inst.op.split(".", 1)[1]
        a = self._read(state, inst.srcs[0])
        b = self._read(state, inst.srcs[1])
        diff = _add(a, b, -1.0)
        if not diff.is_top and not diff.syms:
            # a <cmp> b  ==  (a - b) <cmp> 0, and the uniform unknowns
            # cancelled, so the comparison is decidable per thread.
            assert diff.vec is not None
            return PredVal.concrete(_CMP[cmp](diff.vec,
                                              np.zeros_like(diff.vec)))
        return PredVal.unknown(a.is_uniform and b.is_uniform)

    def _guard_vec(self, inst: Instruction,
                   state: _State) -> Optional[np.ndarray]:
        """Guard truth vector: all-true if unguarded, None if unknown."""
        if inst.guard is None:
            return np.ones(self.n, dtype=bool)
        pred, sense = inst.guard
        pv = self._read_pred(state, pred)
        if pv.vec is not None:
            return pv.vec if sense else ~pv.vec
        return None

    def _transfer(self, pc: int, inst: Instruction, state: _State,
                  record: Optional[SymbolicFacts]) -> None:
        """Apply one instruction to ``state`` (in place)."""
        gvec = self._guard_vec(inst, state)
        # Participation picture for recorded sites: the block execution
        # mask refined by the guard, exact only when both are.
        mask = state.mask if gvec is None else state.mask & gvec
        exact = state.exact and gvec is not None
        op = inst.op
        if op.startswith("SETP.") or op.startswith("FSETP."):
            if isinstance(inst.dst, Pred) \
                    and 0 <= inst.dst.index < len(state.preds):
                new = self._eval_setp(inst, state)
                state.preds[inst.dst.index] = _guarded_pred(
                    state.preds[inst.dst.index], new, gvec)
            return
        if op in ("LDG", "LDS", "LDC", "LDT", "STG", "STS"):
            addr = self._read(state, inst.srcs[0]) if inst.srcs \
                else SymVal.top()
            if record is not None:
                if addr.is_top:
                    vec, syms = None, {}
                else:
                    assert addr.vec is not None
                    vec = addr.vec + inst.offset
                    syms = dict(addr.syms)
                record.mem.append(MemAccess(
                    pc=pc, op=op, space=inst.mem_space or "global",
                    is_store=inst.is_store, mask=mask.copy(), exact=exact,
                    addr_vec=vec, addr_syms=syms))
            if not inst.is_store and isinstance(inst.dst, Reg) \
                    and 0 <= inst.dst.index < len(state.regs):
                # A load's value is statically unknown; it is uniform
                # only for a uniform-address constant load (mutable
                # memory can differ even at one address over time).
                if op == "LDC" and not addr.is_top and addr.is_uniform:
                    value = SymVal.unknown(("load", pc), self.n)
                else:
                    value = SymVal.top()
                state.regs[inst.dst.index] = _guarded_reg(
                    state.regs[inst.dst.index], value, gvec,
                    ("phi", pc, "load", inst.dst.index))
            return
        if op == "BAR":
            if record is not None:
                record.barriers.append(
                    BarrierFact(pc=pc, mask=mask.copy(), exact=exact))
            return
        if op in ("BRA", "JMP", "EXIT", "NOP"):
            return
        # ALU family.
        if isinstance(inst.dst, Reg) \
                and 0 <= inst.dst.index < len(state.regs):
            new = self._eval_alu(pc, inst, state)
            state.regs[inst.dst.index] = _guarded_reg(
                state.regs[inst.dst.index], new, gvec,
                ("phi", pc, "def", inst.dst.index))

    # -- CFG iteration -------------------------------------------------------

    def _initial_state(self) -> _State:
        # Register files start zeroed in the simulator (WarpContext), so
        # the concrete entry state is all-zeros -- reads of never-written
        # registers still match execution (the verifier lints them).
        regs = [SymVal.const(0.0, self.n)] * self.kernel.n_regs
        preds = [PredVal.concrete(np.zeros(self.n, dtype=bool))] \
            * self.kernel.n_preds
        return _State(regs, preds, np.ones(self.n, dtype=bool), True)

    def _run_block(self, leader: int, state: _State,
                   record: Optional[SymbolicFacts]) -> _State:
        for pc in range(leader, self._block_end[leader]):
            self._transfer(pc, self.instructions[pc], state, record)
        return state

    def _out_edges(self, leader: int,
                   state: _State) -> List[Tuple[int, _State]]:
        """Successor leaders with the propagated state along each edge."""
        end = self._block_end[leader]
        last = self.instructions[end - 1]
        succs = [s for s in self.cfg[leader] if s != EXIT_PC_SENTINEL]
        if not succs:
            return []
        if last.op == "BRA" and last.guard is not None and len(succs) >= 2:
            pred, sense = last.guard
            pv = self._read_pred(state, pred)
            out: List[Tuple[int, _State]] = []
            if pv.vec is not None:
                taken = pv.vec if sense else ~pv.vec
                for succ in succs:
                    edge = state.copy()
                    edge.mask = state.mask & (taken if succ == last.target
                                              else ~taken)
                    out.append((succ, edge))
            else:
                for succ in succs:
                    edge = state.copy()
                    edge.exact = False
                    out.append((succ, edge))
            return out
        return [(succ, state.copy()) for succ in succs]

    def _join_states(self, leader: int, current: Optional[_State],
                     incoming: _State) -> Tuple[_State, bool]:
        """Merge ``incoming`` into ``current``; returns (state, changed)."""
        if current is None:
            return incoming.copy(), True
        changed = False
        for i in range(len(current.regs)):
            new = _join_reg(current.regs[i], incoming.regs[i],
                            ("phi", leader, "r", i))
            if not new.equals(current.regs[i]):
                current.regs[i] = new
                changed = True
        for i in range(len(current.preds)):
            newp = _join_pred(current.preds[i], incoming.preds[i])
            if not newp.equals(current.preds[i]):
                current.preds[i] = newp
                changed = True
        merged_mask = current.mask | incoming.mask
        if not np.array_equal(merged_mask, current.mask):
            current.mask = merged_mask
            changed = True
        if current.exact and not incoming.exact:
            current.exact = False
            changed = True
        return current, changed

    def run(self) -> SymbolicFacts:
        """Iterate to fixpoint, then record facts in one final sweep."""
        if not self.leaders:
            return SymbolicFacts(self.n, self.warp_size, self.grid,
                                 [], {}, [], {}, {}, [])
        entry = self.leaders[0]
        entry_states: Dict[int, _State] = {entry: self._initial_state()}
        work = [entry]
        rounds = 0
        limit = 50 * max(1, len(self.leaders))
        while work and rounds < limit:
            rounds += 1
            leader = work.pop(0)
            state = self._run_block(leader, entry_states[leader].copy(),
                                    record=None)
            for succ, edge in self._out_edges(leader, state):
                merged, changed = self._join_states(
                    succ, entry_states.get(succ), edge)
                entry_states[succ] = merged
                if changed and succ not in work:
                    work.append(succ)

        facts = SymbolicFacts(
            n_threads=self.n, warp_size=self.warp_size, grid=self.grid,
            mem=[], branches={}, barriers=[],
            block_masks={}, block_exact={},
            reachable_blocks=sorted(entry_states),
        )
        for leader in sorted(entry_states):
            state = entry_states[leader].copy()
            facts.block_masks[leader] = state.mask.copy()
            facts.block_exact[leader] = state.exact
            self._run_block(leader, state, record=facts)
            end = self._block_end[leader]
            last = self.instructions[end - 1]
            if last.op == "BRA" and last.guard is not None:
                pred, _sense = last.guard
                pv = self._read_pred(state, pred)
                if pv.vec is not None:
                    vals = pv.vec[state.mask]
                    uniform: Optional[bool] = bool(
                        len(vals) == 0 or np.all(vals == vals[0]))
                elif pv.assume_uniform:
                    uniform = True
                else:
                    uniform = None
                facts.branches[end - 1] = BranchFact(pc=end - 1,
                                                     uniform=uniform)
        facts.mem.sort(key=lambda m: m.pc)
        facts.barriers.sort(key=lambda b: b.pc)
        return facts
