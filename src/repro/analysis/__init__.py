"""Static analysis of SIMT kernels: verifier, race detector, lints.

The package is a small pass-based analyzer over :mod:`repro.isa`
kernels (see ARCHITECTURE.md section 9).  Typical entry points::

    from repro.analysis import analyze_launch
    result = analyze_launch(launch, config)
    for d in result.diagnostics:
        print(d.format())

or, end to end against the simulator::

    from repro.analysis import compare_static_dynamic
    cross = compare_static_dynamic(launch, config)
    assert cross.agree is not False
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..isa.launch import KernelLaunch
from ..sim.config import GPUConfig
from .crosscheck import (RULE_GROUPS, RULE_PAIRS, CrossCheckResult,
                         compare_static_dynamic, grade_rules,
                         shape_for_launch)
from .diagnostics import (RULES, Diagnostic, Rule, Severity, diag,
                          diagnostics_to_json, format_diagnostics,
                          has_errors, max_severity)
from .divergence import DivergencePass
from .framework import (AnalysisManager, AnalysisResult, LaunchShape,
                        Pass, default_passes, run_passes)
from .fuzz import FuzzCase, FuzzReport, KernelFuzzer, run_fuzz
from .memlints import (MemoryLintPass, SitePrediction, StaticMemReport,
                       predict_memory)
from .races import SmemRacePass
from .symeval import (BarrierFact, BranchFact, MemAccess, SymbolicEvaluator,
                      SymbolicFacts)
from .uninit import UninitSharedPass
from .verifier import CfgVerifierPass, StructuralVerifierPass

__all__ = [
    "AnalysisManager", "AnalysisResult", "BarrierFact", "BranchFact",
    "CfgVerifierPass", "CrossCheckResult", "Diagnostic",
    "DivergencePass", "FuzzCase", "FuzzReport", "KernelFuzzer",
    "LaunchShape", "MemAccess", "MemoryLintPass",
    "Pass", "RULES", "RULE_GROUPS", "RULE_PAIRS", "Rule", "Severity",
    "SitePrediction", "SmemRacePass", "StaticMemReport",
    "StructuralVerifierPass", "SymbolicEvaluator", "SymbolicFacts",
    "UninitSharedPass", "analyze_kernel",
    "analyze_launch", "compare_static_dynamic", "default_passes",
    "diag", "diagnostics_to_json", "format_diagnostics", "grade_rules",
    "has_errors", "max_severity", "predict_memory", "run_fuzz",
    "run_passes", "shape_for_launch",
]


def analyze_kernel(kernel, shape: LaunchShape,
                   passes: Optional[Sequence[Pass]] = None
                   ) -> AnalysisResult:
    """Run the analyzer pipeline over a bare kernel + launch shape."""
    return run_passes(kernel, shape, passes)


def analyze_launch(launch: KernelLaunch,
                   config: Optional[GPUConfig] = None,
                   passes: Optional[Sequence[Pass]] = None
                   ) -> AnalysisResult:
    """Run the analyzer pipeline over a kernel launch descriptor."""
    cfg = config if config is not None else GPUConfig()
    return run_passes(launch.kernel, shape_for_launch(launch, cfg),
                      passes)
