"""Kernel well-formedness verification (rules V001-V008).

Two passes split along the CFG dependency:

* :class:`StructuralVerifierPass` checks each instruction in isolation
  -- operand arity and kinds per opcode, register/predicate indices
  against the kernel's declared counts, branch targets inside the
  program.  It needs no CFG, so it can run on arbitrarily broken input
  and gate the CFG-dependent passes.
* :class:`CfgVerifierPass` checks flow-sensitive properties --
  registers and predicates possibly read before any write on some path
  (a definite-assignment dataflow), reconvergence-PC agreement with the
  recomputed immediate post-dominators, EXIT reachability, and
  unreachable code.

Reads of never-written registers are not crashes in the simulator (the
register file starts zeroed), which is exactly why they belong in a
verifier: a kernel that silently computes with zeros produces wrong
activity counts, and wrong activity makes wrong power numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..isa.cfg import EXIT_PC_SENTINEL
from ..isa.instructions import ALL_OPS, Instruction, Pred, Reg, Sreg
from .diagnostics import Diagnostic, diag
from .framework import AnalysisManager, Pass, instruction_uses

#: Expected source-operand count and destination kind per opcode.
#: dst kind: "reg", "pred", or None (no destination allowed).
_UNARY_REG = ("MOV", "NOT", "IABS", "I2F", "F2I", "FNEG", "FABS",
              "RCP", "RSQRT", "SQRT", "SIN", "COS", "EXP2", "LOG2")
_BINARY_REG = ("IADD", "ISUB", "IMUL", "AND", "OR", "XOR", "SHL", "SHR",
               "IMIN", "IMAX", "IDIV", "IMOD", "FADD", "FSUB", "FMUL",
               "FMIN", "FMAX", "FDIV", "SELP")
_TERNARY_REG = ("IMAD", "FFMA")

SIGNATURES: Dict[str, Tuple[int, Optional[str]]] = {}
for _op in _UNARY_REG:
    SIGNATURES[_op] = (1, "reg")
for _op in _BINARY_REG:
    SIGNATURES[_op] = (2, "reg")
for _op in _TERNARY_REG:
    SIGNATURES[_op] = (3, "reg")
for _op in ALL_OPS:
    if "SETP" in _op:
        SIGNATURES[_op] = (2, "pred")
for _op in ("LDG", "LDS", "LDC", "LDT"):
    SIGNATURES[_op] = (1, "reg")
for _op in ("STG", "STS"):
    SIGNATURES[_op] = (2, None)
for _op in ("BRA", "JMP", "BAR", "EXIT", "NOP"):
    SIGNATURES[_op] = (0, None)


class StructuralVerifierPass(Pass):
    """Per-instruction checks that need no control-flow graph."""

    name = "verify-structural"
    needs_cfg = False

    def run(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        kernel = am.kernel
        n = len(am.instructions)
        for pc, inst in enumerate(am.instructions):
            out.extend(self._check_signature(kernel.name, pc, inst))
            out.extend(self._check_indices(kernel, pc, inst))
            if inst.is_branch:
                if inst.target is None:
                    out.append(diag("V004", kernel.name,
                                    f"{inst.op} has no resolved target",
                                    pc=pc))
                elif not 0 <= inst.target < n:
                    out.append(diag(
                        "V004", kernel.name,
                        f"{inst.op} target {inst.target} outside the "
                        f"program (valid range 0..{n - 1})",
                        pc=pc, target=inst.target))
        return out

    def _check_signature(self, kernel_name: str, pc: int,
                         inst: Instruction) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        sig = SIGNATURES.get(inst.op)
        if sig is None:
            return out  # Instruction.__post_init__ rejects unknown ops.
        n_srcs, dst_kind = sig
        if len(inst.srcs) != n_srcs:
            out.append(diag(
                "V003", kernel_name,
                f"{inst.op} expects {n_srcs} source operand(s), "
                f"got {len(inst.srcs)}", pc=pc))
        if dst_kind == "reg" and not isinstance(inst.dst, Reg):
            out.append(diag("V003", kernel_name,
                            f"{inst.op} needs a register destination",
                            pc=pc))
        elif dst_kind == "pred" and not isinstance(inst.dst, Pred):
            out.append(diag("V003", kernel_name,
                            f"{inst.op} needs a predicate destination",
                            pc=pc))
        elif dst_kind is None and inst.dst is not None:
            out.append(diag("V003", kernel_name,
                            f"{inst.op} takes no destination", pc=pc))
        if inst.op == "SELP" \
                and not isinstance(getattr(inst, "sel_pred", None), Pred):
            out.append(diag("V003", kernel_name,
                            "SELP is missing its selector predicate",
                            pc=pc))
        if inst.op in ("LDG", "STG", "LDS", "STS", "LDC", "LDT") \
                and inst.srcs \
                and not isinstance(inst.srcs[0], (Reg, Sreg)):
            out.append(diag(
                "V003", kernel_name,
                f"{inst.op} address operand must be a register, "
                f"got {inst.srcs[0]!r}", pc=pc))
        return out

    def _check_indices(self, kernel, pc: int,
                       inst: Instruction) -> List[Diagnostic]:
        out: List[Diagnostic] = []

        def check_reg(r: Reg, role: str) -> None:
            if not 0 <= r.index < kernel.n_regs:
                out.append(diag(
                    "V008", kernel.name,
                    f"{role} r{r.index} outside the kernel's "
                    f"{kernel.n_regs} declared registers", pc=pc,
                    index=r.index, n_regs=kernel.n_regs))

        def check_pred(p: Pred, role: str) -> None:
            if not 0 <= p.index < kernel.n_preds:
                out.append(diag(
                    "V008", kernel.name,
                    f"{role} p{p.index} outside the kernel's "
                    f"{kernel.n_preds} declared predicates", pc=pc,
                    index=p.index, n_preds=kernel.n_preds))

        if isinstance(inst.dst, Reg):
            check_reg(inst.dst, "destination")
        elif isinstance(inst.dst, Pred):
            check_pred(inst.dst, "destination")
        for s in inst.srcs:
            if isinstance(s, Reg):
                check_reg(s, "source")
        if inst.guard is not None:
            check_pred(inst.guard[0], "guard")
        sel = getattr(inst, "sel_pred", None)
        if isinstance(sel, Pred):
            check_pred(sel, "selector")
        return out


class CfgVerifierPass(Pass):
    """Flow-sensitive well-formedness over the block CFG."""

    name = "verify-cfg"
    needs_cfg = True

    def run(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        out.extend(self._check_def_before_use(am))
        out.extend(self._check_reconvergence(am))
        out.extend(self._check_exit_reachability(am))
        out.extend(self._check_unreachable(am))
        return out

    # -- V001/V002: definite assignment -------------------------------------

    def _check_def_before_use(self, am: AnalysisManager) -> List[Diagnostic]:
        """Forward must-analysis: definitely-assigned at block entry is
        the intersection over predecessors; a use outside the running
        set may read the register before any write on some path."""
        out: List[Diagnostic] = []
        if not am.leaders:
            return out
        entry = am.leaders[0]
        reachable = am.reachable_blocks
        defined_in: Dict[int, Optional[Tuple[Set[int], Set[int]]]] = \
            {n: None for n in reachable}
        defined_in[entry] = (set(), set())
        order = [n for n in am.leaders if n in reachable]
        changed = True
        while changed:
            changed = False
            for leader in order:
                if defined_in[leader] is None:
                    continue
                regs, preds = self._block_out(am, leader,
                                              defined_in[leader])
                for succ in am.cfg[leader]:
                    if succ == EXIT_PC_SENTINEL or succ not in reachable:
                        continue
                    cur = defined_in[succ]
                    new = (set(regs), set(preds)) if cur is None \
                        else (cur[0] & regs, cur[1] & preds)
                    if cur is None or new[0] != cur[0] or new[1] != cur[1]:
                        defined_in[succ] = new
                        changed = True
        reported: Set[Tuple[str, int]] = set()
        for leader in order:
            state = defined_in[leader]
            if state is None:
                continue
            regs, preds = set(state[0]), set(state[1])
            for pc in range(leader, am.block_ranges[leader]):
                inst = am.instructions[pc]
                reg_uses, pred_uses = instruction_uses(inst)
                for r in reg_uses:
                    if r not in regs and ("r", r) not in reported:
                        reported.add(("r", r))
                        out.append(diag(
                            "V001", am.kernel.name,
                            f"r{r} may be read before it is written "
                            f"(reads zero from the initial register "
                            f"file)", pc=pc, index=r))
                for p in pred_uses:
                    if p not in preds and ("p", p) not in reported:
                        reported.add(("p", p))
                        out.append(diag(
                            "V002", am.kernel.name,
                            f"p{p} may be read before it is written",
                            pc=pc, index=p))
                if isinstance(inst.dst, Reg):
                    regs.add(inst.dst.index)
                elif isinstance(inst.dst, Pred):
                    preds.add(inst.dst.index)
        return out

    def _block_out(self, am: AnalysisManager, leader: int,
                   state: Optional[Tuple[Set[int], Set[int]]]
                   ) -> Tuple[Set[int], Set[int]]:
        assert state is not None
        regs, preds = set(state[0]), set(state[1])
        for pc in range(leader, am.block_ranges[leader]):
            inst = am.instructions[pc]
            if isinstance(inst.dst, Reg):
                regs.add(inst.dst.index)
            elif isinstance(inst.dst, Pred):
                preds.add(inst.dst.index)
        return regs, preds

    # -- V005: reconvergence PCs --------------------------------------------

    def _check_reconvergence(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for pc, inst in enumerate(am.instructions):
            if inst.op != "BRA":
                continue
            expected = am.ipdom[am.block_of[pc]]
            if inst.reconv_pc is None:
                out.append(diag(
                    "V005", am.kernel.name,
                    "BRA has no reconvergence PC attached "
                    "(was the kernel assembled via KernelBuilder?)",
                    pc=pc, expected=expected))
            elif inst.reconv_pc != expected:
                out.append(diag(
                    "V005", am.kernel.name,
                    f"BRA reconvergence PC {inst.reconv_pc} does not "
                    f"match the immediate post-dominator {expected}",
                    pc=pc, expected=expected, actual=inst.reconv_pc))
        return out

    # -- V006/V007: reachability --------------------------------------------

    def _check_exit_reachability(self,
                                 am: AnalysisManager) -> List[Diagnostic]:
        for leader in am.reachable_blocks:
            if EXIT_PC_SENTINEL in am.cfg[leader]:
                end = am.block_ranges[leader]
                if am.instructions[end - 1].op == "EXIT":
                    return []
        return [diag("V006", am.kernel.name,
                     "no EXIT instruction is reachable from entry; "
                     "every warp would spin forever", pc=0)]

    def _check_unreachable(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for leader in am.leaders:
            if leader not in am.reachable_blocks:
                end = am.block_ranges[leader]
                out.append(diag(
                    "V007", am.kernel.name,
                    f"basic block at pc {leader}..{end - 1} is "
                    f"unreachable from entry", pc=leader))
        return out
