"""Static-vs-dynamic cross-checking of the memory predictions.

The memory lints replicate the simulator's own bank-conflict and
coalescing models on statically resolved addresses, so whenever the
static side declares a site *comparable*, the prediction and the
cycle backend's :class:`~repro.sim.activity.ActivityReport` must
agree -- any gap means the address resolution (or the counter
plumbing) is wrong.  That makes this harness a correctness oracle in
both directions, the same role cross-validation against a reference
plays for accelerated simulators (GATSPI; "Parallelizing a modern GPU
simulator", PAPERS.md).

Compared quantities are per-access ratios, because static analysis
cannot know dynamic trip counts:

* shared: predicted conflict-free  <=>  ``smem_conflict_cycles == 0``;
* global: observed ``mem_transactions / coalescer_accesses`` must lie
  within the static per-site [min, max] transaction-per-access bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..backends.base import DEFAULT_BACKEND, get_backend
from ..isa.launch import KernelLaunch
from ..sim.config import GPUConfig
from .framework import AnalysisManager, LaunchShape
from .memlints import StaticMemReport, predict_memory


def shape_for_launch(launch: KernelLaunch,
                     config: GPUConfig) -> LaunchShape:
    """Launch geometry + the config knobs the memory models use."""
    return LaunchShape(
        n_threads=launch.block.count,
        grid=launch.grid.count,
        warp_size=config.warp_size,
        smem_banks=config.smem_banks,
        coalesce_segment_bytes=config.coalesce_segment_bytes,
    )


@dataclass
class CrossCheckResult:
    """Agreement record for one kernel launch.

    ``agree`` is None when nothing was comparable (static analysis
    could not resolve the addresses), True/False otherwise.
    """

    kernel: str
    static: Dict[str, Any] = field(default_factory=dict)
    dynamic: Dict[str, Any] = field(default_factory=dict)
    checks: List[Dict[str, Any]] = field(default_factory=list)
    agree: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"kernel": self.kernel, "agree": self.agree,
                "static": self.static, "dynamic": self.dynamic,
                "checks": self.checks}


def compare_static_dynamic(launch: KernelLaunch, config: GPUConfig,
                           backend: str = DEFAULT_BACKEND,
                           max_cycles: float = 5e8) -> CrossCheckResult:
    """Run one launch and pin static predictions to observed counters."""
    shape = shape_for_launch(launch, config)
    am = AnalysisManager(launch.kernel, shape)
    report: StaticMemReport = predict_memory(am.symbolic, shape,
                                             launch.kernel.name)
    output = get_backend(backend).simulate(config, launch,
                                           max_cycles=max_cycles)
    act = output.activity

    result = CrossCheckResult(kernel=launch.kernel.name)
    result.static = {
        "smem_comparable": report.smem_comparable,
        "smem_conflict_free": report.smem_conflict_free,
        "global_comparable": report.global_comparable,
        "global_txn_bounds": report.global_txn_bounds(),
        "sites": [{"pc": s.pc, "op": s.op, "space": s.space,
                   "comparable": s.comparable, "phases": s.phases,
                   "txn_per_access": s.transactions_per_access}
                  for s in report.sites],
    }
    result.dynamic = {
        "smem_conflict_cycles": act.smem_conflict_cycles,
        "bank_conflict_checks": act.bank_conflict_checks,
        "coalescer_accesses": act.coalescer_accesses,
        "mem_transactions": act.mem_transactions,
    }

    checks: List[Dict[str, Any]] = []
    has_smem = any(s.space == "shared" for s in report.sites)
    if has_smem and report.smem_comparable:
        observed_free = act.smem_conflict_cycles == 0
        checks.append({
            "check": "smem_conflict_free",
            "predicted": report.smem_conflict_free,
            "observed": observed_free,
            "ok": report.smem_conflict_free == observed_free,
        })
    bounds = report.global_txn_bounds()
    if report.global_comparable and bounds is not None \
            and act.coalescer_accesses > 0:
        observed = act.mem_transactions / act.coalescer_accesses
        lo, hi = bounds
        checks.append({
            "check": "global_txn_per_access",
            "predicted_bounds": [lo, hi],
            "observed": observed,
            "ok": lo - 1e-9 <= observed <= hi + 1e-9,
        })
    result.checks = checks
    result.agree = all(c["ok"] for c in checks) if checks else None
    return result


# ---------------------------------------------------------------------------
# Grading static rules against sanitizer ground truth
# ---------------------------------------------------------------------------

#: Static rule -> the sanitizer rule serving as its ground truth.
#: R003 (address not analyzable / undecidable) counts as a *race
#: prediction* for grading: the analyzer declined to prove safety.
RULE_PAIRS: Dict[str, str] = {
    "R001": "S003",
    "R002": "S003",
    "R003": "S003",
    "M003": "S002",
    "U001": "S001",
}

#: Grading groups: several static rules can legitimately fire for one
#: dynamic phenomenon (a write-write race is R001 *or* an undecidable
#: R003), so recall is judged per group -- did *any* paired static
#: rule predict the observed dynamic finding?
RULE_GROUPS: Dict[str, Dict[str, Any]] = {
    "races": {"static": ("R001", "R002", "R003"), "dynamic": "S003"},
    "bounds": {"static": ("M003",), "dynamic": "S002"},
    "uninit_shared": {"static": ("U001",), "dynamic": "S001"},
}


def _score(tp: int, fp: int, fn: int) -> Dict[str, Any]:
    precision = tp / (tp + fp) if tp + fp else None
    recall = tp / (tp + fn) if tp + fn else None
    return {"tp": tp, "fp": fp, "fn": fn,
            "precision": precision, "recall": recall}


def grade_rules(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Precision/recall of static rules against sanitizer ground truth.

    Each record describes one fuzzed (or curated) kernel run both ways:
    ``{"static_rules": <iterable of rule ids the analyzer fired>,
    "dynamic_rules": <iterable the sanitizer fired>}`` (extra keys pass
    through untouched).  Counting is per *kernel*, not per finding --
    the two sides aggregate differently (the sanitizer collapses
    identical races across blocks, the analyzer reports per site), so
    the comparable unit is "did this rule fire on this kernel at all".

    Returns ``{"cases": n, "rules": {rule: row}, "groups": {name:
    row}}`` where each row carries tp/fp/fn and precision/recall
    (None when undefined, i.e. the denominator is empty).  Per-rule
    rows grade a rule's own firings; group rows answer the question
    the fuzzer gates on -- e.g. for ``races``, every dynamically
    observed S003 must have been predicted by *some* race rule
    (recall 1.0 means the static analyzer has no race false
    negatives).
    """
    per_rule = {rule: {"tp": 0, "fp": 0, "fn": 0}
                for rule in RULE_PAIRS}
    per_group = {name: {"tp": 0, "fp": 0, "fn": 0}
                 for name in RULE_GROUPS}
    for rec in records:
        static = set(rec.get("static_rules", ()))
        dynamic = set(rec.get("dynamic_rules", ()))
        for rule, truth in RULE_PAIRS.items():
            if rule in static:
                bucket = "tp" if truth in dynamic else "fp"
                per_rule[rule][bucket] += 1
            elif truth in dynamic:
                per_rule[rule]["fn"] += 1
        for name, group in RULE_GROUPS.items():
            predicted = any(r in static for r in group["static"])
            observed = group["dynamic"] in dynamic
            if predicted:
                bucket = "tp" if observed else "fp"
                per_group[name][bucket] += 1
            elif observed:
                per_group[name]["fn"] += 1
    return {
        "cases": len(records),
        "rules": {rule: _score(**counts)
                  for rule, counts in sorted(per_rule.items())},
        "groups": {name: _score(**counts)
                   for name, counts in sorted(per_group.items())},
    }
