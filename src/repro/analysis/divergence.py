"""Divergence analysis (rules D001, D002).

The symbolic evaluator already classifies every conditional branch as
provably uniform, provably divergent, or unknown (see
:class:`~repro.analysis.symeval.BranchFact`): thread-dependence
propagates from the ``tid``-family special registers through the value
domain, and a branch whose predicate ends up thread-variant diverges.

This pass turns those verdicts into the two lints that matter for the
stack-based reconvergence model:

* **D001 -- barrier under divergence.**  A ``BAR`` between a
  potentially divergent branch and its reconvergence point executes
  with only one side of the warp present; the other side never
  arrives, and the block deadlocks (the cycle simulator would hang
  until its watchdog).  We compute each divergent branch's *divergence
  region* -- blocks reachable from its successors without passing
  through the immediate post-dominator -- and flag any BAR inside.  A
  BAR whose own participation mask is exactly known and not the full
  block is flagged directly.
* **D002 -- reconvergence only at exit.**  A divergent branch whose
  immediate post-dominator is the virtual exit keeps the warp split
  for the rest of the kernel: legal, but the serialization cost is
  global instead of local, so it is worth a warning.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..isa.cfg import EXIT_PC_SENTINEL
from .diagnostics import Diagnostic, diag
from .framework import AnalysisManager, Pass


def divergence_region(am: AnalysisManager, branch_pc: int) -> Set[int]:
    """Blocks executed while the warp may be split by this branch.

    The region is everything reachable from the branch block's
    successors without passing through the branch's immediate
    post-dominator (where the reconvergence stack rejoins the warp).
    """
    block = am.block_of[branch_pc]
    stop = am.ipdom[block]
    region: Set[int] = set()
    stack = [s for s in am.cfg[block] if s != EXIT_PC_SENTINEL]
    while stack:
        node = stack.pop()
        if node == stop or node in region:
            continue
        region.add(node)
        stack.extend(s for s in am.cfg[node] if s != EXIT_PC_SENTINEL)
    return region


class DivergencePass(Pass):
    """Find barriers under divergence and costly reconvergence."""

    name = "divergence"
    needs_cfg = True

    def run(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        facts = am.symbolic
        n = am.shape.n_threads

        # Blocks covered by some possibly-divergent branch's region.
        divergent_regions: Dict[int, List[int]] = {}
        for pc, fact in facts.branches.items():
            if fact.uniform:
                continue
            for block in divergence_region(am, pc):
                divergent_regions.setdefault(block, []).append(pc)
            if am.ipdom[am.block_of[pc]] == EXIT_PC_SENTINEL:
                word = "divergent" if fact.uniform is False \
                    else "potentially divergent"
                out.append(diag(
                    "D002", am.kernel.name,
                    f"{word} branch reconverges only at kernel exit; "
                    f"the warp stays serialized for the remainder",
                    pc=pc))

        for bar in facts.barriers:
            active = int(bar.mask.sum())
            if bar.exact and active not in (0, n):
                out.append(diag(
                    "D001", am.kernel.name,
                    f"BAR executes with {active} of {n} threads; the "
                    f"missing threads never arrive and the block "
                    f"deadlocks", pc=bar.pc, active=active, block=n))
                continue
            block = am.block_of[bar.pc]
            if block in divergent_regions:
                branches = sorted(divergent_regions[block])
                out.append(diag(
                    "D001", am.kernel.name,
                    f"BAR is reachable while the warp may be split by "
                    f"the divergent branch at pc "
                    f"{branches[0]}", pc=bar.pc,
                    branches=branches))
        return out
