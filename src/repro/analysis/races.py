"""Static shared-memory race detection (rules R001-R003, M003).

Shared memory is the one space where the bundled kernels communicate
across threads, and ``BAR`` is the only synchronization the ISA has --
so the happens-before structure is simple: two accesses can race only
if one is reachable from the other along a path that executes no
barrier.  The detector therefore:

1. computes, per memory instruction, the set of shared-memory
   instructions reachable from it barrier-free (an instruction-level
   DFS that stops at ``BAR``);
2. for each ordered pair with at least one store, compares the
   per-thread address sets from the symbolic evaluation.  Addresses
   carry uniform-unknown terms (loop-carried bases, ``ctaid``); two
   accesses with *equal* symbolic terms overlap iff their concrete
   per-thread components overlap -- distinctness is invariant under a
   shared uniform shift.  Pairs whose terms differ are undecidable and
   reported as R003 (info) rather than guessed at.

A same-site store races with itself when two threads write the same
word (duplicate addresses under the participation mask).

Bounds (M003) ride along here because the facts are already on hand:
a fully resolved shared address outside ``kernel.smem_words`` is a
hard error.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from .diagnostics import Diagnostic, Severity, diag
from .framework import AnalysisManager, Pass
from .symeval import MemAccess


def barrier_free_reachable(am: AnalysisManager,
                           from_pc: int) -> Set[int]:
    """PCs reachable from ``from_pc`` without executing a BAR.

    Successors of ``from_pc`` itself are explored (execution continues
    after the instruction); traversal stops *at* each BAR without
    passing through it.  ``from_pc`` is included only if reachable
    from itself (a barrier-free loop).
    """
    insts = am.instructions
    n = len(insts)

    def succs(pc: int) -> List[int]:
        inst = insts[pc]
        if inst.op == "EXIT":
            return []
        if inst.op == "JMP":
            return [inst.target] if inst.target is not None else []
        out = []
        if pc + 1 < n:
            out.append(pc + 1)
        if inst.op == "BRA" and inst.target is not None:
            out.append(inst.target)
        return out

    seen: Set[int] = set()
    stack = succs(from_pc)
    while stack:
        pc = stack.pop()
        if pc in seen:
            continue
        seen.add(pc)
        if insts[pc].op == "BAR":
            continue
        stack.extend(s for s in succs(pc) if s not in seen)
    return seen


def _overlap(a: MemAccess, b: MemAccess) -> Tuple[str, int]:
    """Compare two analyzable accesses with equal symbolic terms.

    A word only counts as racing when *different* threads touch it
    across the two accesses -- a thread reading and then writing its
    own word is ordered by program order, not a race.

    Returns ("disjoint", 0) or ("overlap", n_racing_words).
    """
    assert a.addr_vec is not None and b.addr_vec is not None
    threads_a = np.flatnonzero(a.mask)
    threads_b = np.flatnonzero(b.mask)
    addrs_a = a.addr_vec[a.mask].astype(np.int64)
    addrs_b = b.addr_vec[b.mask].astype(np.int64)
    common = np.intersect1d(addrs_a, addrs_b)
    racing = 0
    for word in common:
        ta = threads_a[addrs_a == word]
        tb = threads_b[addrs_b == word]
        if len(ta) > 1 or len(tb) > 1 or ta[0] != tb[0]:
            racing += 1
    if racing == 0:
        return "disjoint", 0
    return "overlap", racing


class SmemRacePass(Pass):
    """Write-write / read-write overlap within barrier intervals."""

    name = "smem-races"
    needs_cfg = True

    def run(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        facts = am.symbolic
        smem = facts.smem_accesses()
        if not smem:
            return out

        for acc in smem:
            if not acc.analyzable:
                out.append(diag(
                    "R003", am.kernel.name,
                    f"{acc.op} address is not statically analyzable; "
                    f"race and bank-conflict checks are skipped for "
                    f"this access", pc=acc.pc))
        analyzable = [a for a in smem if a.analyzable]

        out.extend(self._check_bounds(am, analyzable))
        out.extend(self._check_same_site(am, analyzable))
        out.extend(self._check_cross_site(am, analyzable))
        return out

    # -- M003 ---------------------------------------------------------------

    def _check_bounds(self, am: AnalysisManager,
                      accesses: List[MemAccess]) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        words = am.kernel.smem_words
        for acc in accesses:
            if not acc.base_resolves:
                continue  # loop-carried base: bounds undecidable
            for ctaid in (0, max(0, am.shape.grid - 1)):
                addrs = acc.addresses(ctaid)
                if len(addrs) and (addrs.min() < 0
                                   or addrs.max() >= words):
                    out.append(diag(
                        "M003", am.kernel.name,
                        f"{acc.op} touches word "
                        f"{int(addrs.min())}..{int(addrs.max())} but "
                        f"the kernel declares {words} shared words",
                        pc=acc.pc, smem_words=words,
                        lo=int(addrs.min()), hi=int(addrs.max())))
                    break
        return out

    # -- R001 same-site -----------------------------------------------------

    def _check_same_site(self, am: AnalysisManager,
                         accesses: List[MemAccess]) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for acc in accesses:
            if not acc.is_store:
                continue
            if acc.pc in barrier_free_reachable(am, acc.pc) \
                    and any(t != ("ctaid",) for t in acc.addr_syms):
                # The store re-executes in a barrier-free loop with a
                # loop-carried base: iterations write shifting address
                # sets we cannot compare against each other.
                out.append(diag(
                    "R003", am.kernel.name,
                    f"{acc.op} repeats in a barrier-free loop with a "
                    f"loop-carried address base; cross-iteration "
                    f"overlap is undecidable", pc=acc.pc))
                continue
            assert acc.addr_vec is not None
            addrs = acc.addr_vec[acc.mask].astype(np.int64)
            n_dup = len(addrs) - len(np.unique(addrs))
            if n_dup:
                out.append(diag(
                    "R001", am.kernel.name,
                    f"{acc.op}: {n_dup + 1} threads write the same "
                    f"shared word in one execution (last writer "
                    f"wins nondeterministically)", pc=acc.pc,
                    severity=Severity.ERROR if acc.exact
                    else Severity.WARNING,
                    duplicate_threads=n_dup + 1, proven=acc.exact))
        return out

    # -- R001/R002 cross-site -----------------------------------------------

    def _check_cross_site(self, am: AnalysisManager,
                          accesses: List[MemAccess]) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        reach: Dict[int, Set[int]] = {
            a.pc: barrier_free_reachable(am, a.pc) for a in accesses}
        reported: Set[Tuple[int, int]] = set()
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if not (a.is_store or b.is_store):
                    continue
                key = (a.pc, b.pc)
                if key in reported:
                    continue
                # Unordered pair: a race needs one access reachable
                # from the other without an intervening barrier.
                if b.pc not in reach[a.pc] and a.pc not in reach[b.pc]:
                    continue
                # Equal symbolic terms only license a concrete
                # comparison when the unknowns hold the same values at
                # both executions.  A loop-carried (phi) base inside a
                # barrier-free cycle takes a different value each
                # iteration, so the comparison would be unsound.
                in_cycle = (a.pc in reach[a.pc] or b.pc in reach[b.pc])
                has_phi = any(t != ("ctaid",) for t in a.addr_syms) \
                    or any(t != ("ctaid",) for t in b.addr_syms)
                if in_cycle and has_phi:
                    reported.add(key)
                    out.append(diag(
                        "R003", am.kernel.name,
                        f"cannot compare {a.op}@pc{a.pc} with "
                        f"{b.op}@pc{b.pc}: loop-carried address bases "
                        f"inside a barrier-free cycle", pc=b.pc,
                        other_pc=a.pc))
                    continue
                if a.addr_syms != b.addr_syms:
                    # Different uniform bases: overlap undecidable.
                    # (In the bundled kernels such pairs are always
                    # barrier-separated; reaching here is unusual
                    # enough to surface.)
                    reported.add(key)
                    out.append(diag(
                        "R003", am.kernel.name,
                        f"cannot compare {a.op}@pc{a.pc} with "
                        f"{b.op}@pc{b.pc}: address bases differ "
                        f"symbolically", pc=b.pc, other_pc=a.pc))
                    continue
                verdict, common = _overlap(a, b)
                if verdict == "overlap":
                    reported.add(key)
                    rule = "R001" if a.is_store and b.is_store \
                        else "R002"
                    kind = "write-write" if rule == "R001" \
                        else "read-write"
                    # With an exact participation mask the overlap is
                    # proven.  An inexact mask (a guard the symbolic
                    # domain could not resolve, e.g. ``tid < stride``
                    # with a loop-carried stride) over-approximates the
                    # participants, so the overlap is only possible --
                    # report it, but below the --strict gate.
                    exact = a.exact and b.exact
                    qualifier = "" if exact else \
                        " (execution masks not statically exact; " \
                        "the guard may separate the threads)"
                    out.append(diag(
                        rule, am.kernel.name,
                        f"{kind} overlap on {common} shared word(s) "
                        f"between {a.op}@pc{a.pc} and {b.op}@pc{b.pc} "
                        f"with no barrier between them{qualifier}",
                        pc=b.pc,
                        severity=Severity.ERROR if exact
                        else Severity.WARNING,
                        other_pc=a.pc, words=common, proven=exact))
        return out
