"""Verified kernel fuzzing: differential testing + analyzer grading.

Two jobs in one harness, both driven by the same seeded corpus of
random mini-ISA kernels:

1. **Differential testing of the engines.**  Every generated kernel
   runs on the ``cycle`` backend and on ``functional_ref`` (the scalar
   reference interpreter behind the same engine); results must match
   bit for bit -- activity counters, cycle count and the final memory
   image.  Kernels that fault must fault identically.  A slice of the
   corpus additionally runs on ``parallel_cycle`` (sanitized, multi-
   shard) to pin sanitizer determinism across engines, and a sample of
   clean cases runs the ``analytical`` estimator to report its power
   error distribution against exact ground truth.

2. **Grading the static analyzer.**  Each kernel is analyzed
   statically *and* executed under the runtime sanitizer; the per-case
   ``(static_rules, dynamic_rules)`` pairs feed
   :func:`~repro.analysis.crosscheck.grade_rules`, producing a
   precision/recall matrix of the R/M/U rules against S-rule ground
   truth.  The fuzzer's hard gate: the race group's recall is 1.0 --
   every dynamically observed race was statically predicted.

Generation is seeded and fully deterministic: case ``i`` of seed ``s``
is always the same kernel, so a failing case reproduces from its index
alone.  Address-forming registers derive only from special registers
and immediates -- data may race, addresses never do -- which keeps
every kernel's *access sets* engine-independent even when its loaded
values are not.  Racy flavors use single-warp blocks, so even their
data is deterministic (vector execution orders lanes of one warp
atomically), keeping the differential bit-exactness gate meaningful
over the whole corpus.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..isa import KernelBuilder, Sreg
from ..isa.launch import Dim3, KernelLaunch
from ..sim.config import GPUConfig
from .crosscheck import grade_rules, shape_for_launch
from .diagnostics import Severity
from .framework import run_passes

#: Fuzz flavors with their selection weights.
FLAVORS: Tuple[Tuple[str, int], ...] = (
    ("clean", 40), ("racy", 25), ("uninit", 20), ("oob", 15),
)

#: Large prime stride separating per-case RNG streams.
_SEED_STRIDE = 1_000_003

#: Safe two-operand float ALU ops for random computation chains
#: (closed over finite float64 inputs; no division, no int conversion).
_ALU_OPS = ("fadd", "fsub", "fmul", "fmin", "fmax")


@dataclass
class FuzzCase:
    """One generated kernel plus everything needed to judge it."""

    name: str
    flavor: str
    index: int
    launch: KernelLaunch
    #: Whether execution is expected to abort (out-of-bounds access).
    expect_fault: bool = False


class KernelFuzzer:
    """Seeded property-based generator over the mini SIMT ISA.

    Case ``i`` derives from ``random.Random(seed * stride + i)``, so
    cases are independent and reproducible individually -- the corpus
    needs no sequential generation state.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def case(self, index: int) -> FuzzCase:
        rng = random.Random(self.seed * _SEED_STRIDE + index)
        flavor = rng.choices([f for f, _ in FLAVORS],
                             weights=[w for _, w in FLAVORS])[0]
        name = f"fuzz_{flavor}_{index}"
        build = getattr(self, f"_gen_{flavor}")
        launch, expect_fault = build(name, rng)
        return FuzzCase(name=name, flavor=flavor, index=index,
                        launch=launch, expect_fault=expect_fault)

    # -- flavor generators ----------------------------------------------------

    @staticmethod
    def _launch(kernel, grid: int, threads: int, n_inputs: int,
                n_outputs: int, rng: random.Random) -> KernelLaunch:
        """Launch with a seeded input image covering ``n_inputs`` words."""
        data = np.array([rng.uniform(1.0, 2.0) for _ in range(n_inputs)],
                        dtype=np.float64)
        return KernelLaunch(
            kernel=kernel, grid=Dim3(grid, 1, 1),
            block=Dim3(threads, 1, 1),
            globals_init=({0: data} if n_inputs else {}),
            gmem_words=n_inputs + n_outputs + 8)

    def _gen_clean(self, name: str,
                   rng: random.Random) -> Tuple[KernelLaunch, bool]:
        """Data-parallel kernel with disjoint per-thread outputs."""
        threads = rng.choice((8, 16, 32, 64))
        grid = rng.choice((1, 2, 4))
        n = grid * threads
        use_smem = rng.random() < 0.5
        kb = KernelBuilder(name, smem_words=threads if use_smem else 0)
        t = kb.reg()
        kb.mov(t, Sreg("gtid"))
        a, b = kb.regs(2)
        kb.ldg(a, t, offset=0)
        kb.ldg(b, t, offset=n)
        acc = kb.reg()
        getattr(kb, rng.choice(_ALU_OPS))(acc, a, b)
        for _ in range(rng.randrange(0, 3)):
            getattr(kb, rng.choice(_ALU_OPS))(
                acc, acc, rng.choice((a, b)))
        if use_smem:
            # Barrier-separated staging through shared memory: every
            # word written before any cross-thread read.
            tid, staged = kb.regs(2)
            kb.mov(tid, Sreg("tid"))
            kb.sts(acc, tid)
            kb.bar()
            kb.lds(staged, tid)
            acc = staged
        guard = None
        if rng.random() < 0.3:
            # Concrete guard on the output store (exact masks).
            tid2 = kb.reg()
            p = kb.pred()
            kb.mov(tid2, Sreg("tid"))
            kb.setp("lt", p, tid2, rng.randrange(1, threads + 1))
            guard = (p, True)
        kb.stg(acc, t, offset=2 * n, guard=guard)
        kb.exit()
        return self._launch(kb.build(), grid, threads, 2 * n, n, rng), \
            False

    def _gen_racy(self, name: str,
                  rng: random.Random) -> Tuple[KernelLaunch, bool]:
        """Shared-memory race (single warp: deterministic data)."""
        threads = 32
        grid = rng.choice((1, 2, 4))
        n = grid * threads
        kind = rng.choice(("ww", "rw"))
        if kind == "ww":
            # Every thread stores to the same word: write-write race.
            smem = rng.choice((4, 8))
            kb = KernelBuilder(name, smem_words=smem)
            z, v, t, u = kb.regs(4)
            kb.mov(z, rng.randrange(smem))
            kb.mov(v, Sreg("tid"))
            kb.sts(v, z)
            kb.bar()
            kb.lds(u, z)
            kb.mov(t, Sreg("gtid"))
            kb.stg(u, t)
            kb.exit()
        else:
            # Store s[tid], read s[tid+1] with no barrier between:
            # read-write race (and the top word is never written).
            kb = KernelBuilder(name, smem_words=threads + 1)
            t, u, v, g = kb.regs(4)
            kb.mov(t, Sreg("tid"))
            kb.sts(t, t)
            kb.iadd(u, t, 1)
            kb.lds(v, u)
            kb.mov(g, Sreg("gtid"))
            kb.stg(v, g)
            kb.exit()
        return self._launch(kb.build(), grid, threads, 0, n, rng), False

    def _gen_uninit(self, name: str,
                    rng: random.Random) -> Tuple[KernelLaunch, bool]:
        """Reads of shared words no store ever writes."""
        threads = rng.choice((8, 16, 32))
        grid = rng.choice((1, 2))
        n = grid * threads
        kb = KernelBuilder(name, smem_words=threads)
        t, v, g = kb.regs(3)
        kb.mov(t, Sreg("tid"))
        if rng.random() < 0.5:
            # Partial initialization: only the first k words written.
            p = kb.pred()
            kb.setp("lt", p, t, rng.randrange(1, threads))
            kb.sts(t, t, guard=(p, True))
            kb.bar()
        kb.lds(v, t)
        kb.mov(g, Sreg("gtid"))
        kb.stg(v, g)
        kb.exit()
        return self._launch(kb.build(), grid, threads, 0, n, rng), False

    def _gen_oob(self, name: str,
                 rng: random.Random) -> Tuple[KernelLaunch, bool]:
        """Shared store past ``smem_words``: aborts with IndexError."""
        threads = 32
        smem = rng.choice((4, 8, 16))
        kb = KernelBuilder(name, smem_words=smem)
        t = kb.reg()
        kb.mov(t, Sreg("tid"))
        kb.sts(t, t)  # lanes >= smem are out of bounds
        kb.exit()
        return self._launch(kb.build(), 1, threads, 0, 0, rng), True


# ---------------------------------------------------------------------------
# The differential harness
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything one fuzz run produced, JSON-ready via :meth:`to_dict`."""

    seed: int
    requested: int
    generated: int = 0
    valid: int = 0
    elapsed_s: float = 0.0
    records: List[Dict[str, Any]] = field(default_factory=list)
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    matrix: Dict[str, Any] = field(default_factory=dict)
    error_distribution: Dict[str, Any] = field(default_factory=dict)
    parallel_checked: int = 0

    @property
    def race_recall(self) -> Optional[float]:
        groups = self.matrix.get("groups", {})
        return groups.get("races", {}).get("recall")

    @property
    def gates(self) -> Dict[str, Any]:
        """The CI pass/fail verdicts this report is judged by."""
        recall = self.race_recall
        return {
            "bit_exact": not self.mismatches,
            "race_recall": recall,
            "race_recall_ok": recall is None or recall >= 1.0,
            "ok": (not self.mismatches
                   and (recall is None or recall >= 1.0)),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed, "requested": self.requested,
            "generated": self.generated, "valid": self.valid,
            "elapsed_s": self.elapsed_s,
            "parallel_checked": self.parallel_checked,
            "gates": self.gates, "matrix": self.matrix,
            "error_distribution": self.error_distribution,
            "mismatches": self.mismatches, "records": self.records,
        }


def _execute(backend_name: str, config: GPUConfig, launch: KernelLaunch,
             **kwargs):
    """Run one backend; returns ``(output, exception)``.

    Only the faults fuzzed kernels legitimately produce are caught --
    out-of-bounds aborts (IndexError) and barrier deadlocks.  Anything
    else is a harness bug and propagates.
    """
    from ..backends import get_backend
    from ..sim.core import SimulationDeadlock
    try:
        return get_backend(backend_name).simulate(config, launch,
                                                  **kwargs), None
    except (IndexError, SimulationDeadlock) as exc:
        return None, exc


def _diag_dicts(diagnostics) -> List[Dict[str, Any]]:
    return [d.to_dict() for d in (diagnostics or [])]


def run_fuzz(seed: int = 1337, count: int = 200,
             budget_s: Optional[float] = None,
             config: Optional[GPUConfig] = None,
             parallel_every: int = 5,
             error_sample: int = 10,
             progress=None) -> FuzzReport:
    """Generate, verify, differentially execute and grade a corpus.

    Args:
        seed: Corpus seed; the same seed always names the same corpus.
        count: Verifier-valid kernels to run (invalid generations are
            skipped and regenerated, counted in ``generated``).
        budget_s: Optional wall-clock budget; generation stops early
            when exceeded (the report then carries fewer cases).
        config: GPU to simulate (default: the paper's GT240).
        parallel_every: Every n-th non-faulting case also runs
            sanitized on ``parallel_cycle`` (2 shards) and must
            reproduce the serial diagnostics exactly (clean cases must
            also reproduce the memory image).
        error_sample: Clean cases sampled for the ``analytical``
            estimator's power-error distribution.
        progress: Optional callback ``(done, total)``.
    """
    if config is None:
        from ..sim import gt240
        config = gt240()
    fuzzer = KernelFuzzer(seed)
    report = FuzzReport(seed=int(seed), requested=int(count))
    start = time.perf_counter()
    errors: List[float] = []
    index = 0
    while report.valid < count:
        if budget_s is not None \
                and time.perf_counter() - start > budget_s:
            break
        case = fuzzer.case(index)
        index += 1
        report.generated += 1
        shape = shape_for_launch(case.launch, config)
        static = run_passes(case.launch.kernel, shape)
        if any(d.rule.startswith("V")
               and d.severity >= Severity.ERROR
               for d in static.diagnostics):
            continue  # verifier-invalid generation: regenerate
        report.valid += 1
        static_rules = sorted({d.rule for d in static.diagnostics})

        # Ground truth: the sanitized serial cycle engine.
        out_c, exc_c = _execute("cycle", config, case.launch,
                                sanitize=True)
        out_f, exc_f = _execute("functional_ref", config, case.launch)
        record: Dict[str, Any] = {
            "name": case.name, "index": case.index,
            "flavor": case.flavor,
            "grid": case.launch.grid.count,
            "block": case.launch.block.count,
            "smem_words": case.launch.kernel.smem_words,
            "static_rules": static_rules,
            "fault": exc_c is not None,
        }
        mismatch: Optional[str] = None
        if exc_c is not None:
            dynamic = getattr(exc_c, "sanitizer_diagnostics", [])
            if not case.expect_fault:
                mismatch = f"unexpected fault: {exc_c!r}"
            elif exc_f is None \
                    or type(exc_f).__name__ != type(exc_c).__name__:
                mismatch = (f"fault divergence: cycle={exc_c!r} "
                            f"functional_ref={exc_f!r}")
        else:
            dynamic = out_c.diagnostics or []
            if case.expect_fault:
                mismatch = "expected a fault but the run completed"
            elif exc_f is not None:
                mismatch = f"functional_ref faulted: {exc_f!r}"
            elif out_c.activity.as_dict() != out_f.activity.as_dict():
                mismatch = "activity counters differ"
            elif out_c.cycles != out_f.cycles:
                mismatch = (f"cycle counts differ: {out_c.cycles} "
                            f"vs {out_f.cycles}")
            elif not np.array_equal(out_c.gmem, out_f.gmem):
                mismatch = "final memory images differ"
        record["dynamic_rules"] = sorted({d.rule for d in dynamic})
        record["diagnostics"] = _diag_dicts(dynamic)

        # Sanitizer determinism across engines, on a corpus slice.
        if mismatch is None and exc_c is None and parallel_every \
                and report.valid % parallel_every == 0:
            out_p, exc_p = _execute("parallel_cycle", config,
                                    case.launch, sanitize=True,
                                    n_shards=2)
            report.parallel_checked += 1
            if exc_p is not None:
                mismatch = f"parallel_cycle faulted: {exc_p!r}"
            elif _diag_dicts(out_p.diagnostics) != _diag_dicts(dynamic):
                mismatch = "parallel_cycle sanitizer diagnostics differ"
            elif case.flavor == "clean" \
                    and not np.array_equal(out_c.gmem, out_p.gmem):
                mismatch = "parallel_cycle memory image differs"

        # Estimator error distribution on a clean sample.
        if mismatch is None and exc_c is None \
                and case.flavor == "clean" and len(errors) < error_sample:
            out_a, exc_a = _execute("analytical", config, case.launch)
            if exc_a is None:
                from ..power.chip import Chip
                chip = Chip(config)
                exact = chip.evaluate(out_c.activity).chip_total_w
                est = chip.evaluate(out_a.activity).chip_total_w
                if exact > 0:
                    errors.append(abs(est - exact) / exact)

        if mismatch is not None:
            record["mismatch"] = mismatch
            report.mismatches.append(
                {"name": case.name, "index": case.index,
                 "flavor": case.flavor, "mismatch": mismatch})
        report.records.append(record)
        if progress is not None:
            progress(report.valid, count)

    report.elapsed_s = time.perf_counter() - start
    report.matrix = grade_rules(report.records)
    if errors:
        arr = np.array(errors)
        report.error_distribution["analytical"] = {
            "n": int(arr.size),
            "mean": float(arr.mean()),
            "max": float(arr.max()),
        }
    return report


def format_report(report: FuzzReport) -> str:
    """Human-readable summary of one fuzz run (the CLI's output)."""
    lines = [
        f"fuzz corpus: seed={report.seed} valid={report.valid}"
        f"/{report.requested} (generated {report.generated}) "
        f"in {report.elapsed_s:.1f}s",
        f"differential: {len(report.mismatches)} mismatch(es); "
        f"parallel determinism checked on {report.parallel_checked} "
        f"case(s)",
    ]
    for m in report.mismatches[:10]:
        lines.append(f"  MISMATCH {m['name']}: {m['mismatch']}")
    dist = report.error_distribution.get("analytical")
    if dist:
        lines.append(f"analytical power error: mean "
                     f"{100 * dist['mean']:.2f}%  max "
                     f"{100 * dist['max']:.2f}%  (n={dist['n']})")
    lines.append("rule grading (static vs sanitizer ground truth):")
    header = f"  {'rule':<15} {'tp':>4} {'fp':>4} {'fn':>4} " \
             f"{'precision':>10} {'recall':>8}"
    lines.append(header)

    def fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:.3f}"

    for rule, row in report.matrix.get("rules", {}).items():
        lines.append(f"  {rule:<15} {row['tp']:>4} {row['fp']:>4} "
                     f"{row['fn']:>4} {fmt(row['precision']):>10} "
                     f"{fmt(row['recall']):>8}")
    for name, row in report.matrix.get("groups", {}).items():
        label = f"[{name}]"
        lines.append(f"  {label:<15} {row['tp']:>4} {row['fp']:>4} "
                     f"{row['fn']:>4} {fmt(row['precision']):>10} "
                     f"{fmt(row['recall']):>8}")
    gates = report.gates
    lines.append(f"gates: bit_exact={gates['bit_exact']} "
                 f"race_recall={fmt(gates['race_recall'])} "
                 f"-> {'PASS' if gates['ok'] else 'FAIL'}")
    return "\n".join(lines)
