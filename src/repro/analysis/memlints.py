"""Static memory-access lints (rules M001, M002) and predictions.

Both lints re-run the *dynamic* models of the simulator on statically
resolved per-warp address vectors, so a static prediction and a
dynamic observation can only disagree when the address resolution
itself is wrong -- that is the invariant the cross-check harness
(:mod:`repro.analysis.crosscheck`) pins against
:class:`~repro.sim.activity.ActivityReport` counters:

* **Bank conflicts** replicate :class:`repro.sim.smem.SharedMemory`:
  per warp, distinct word addresses grouped by ``addr % n_banks``;
  the largest bucket is the phase count.  A uniform base shift
  permutes the banks bijectively, so phase counts are valid even when
  the base is a loop-carried unknown.
* **Coalescing** replicates :class:`repro.sim.coalescer.Coalescer`:
  one transaction per distinct aligned segment.  Segment grouping is
  *not* shift-invariant in general, so the prediction is only offered
  when the unknown base coefficients are whole segments (then the
  shift moves all lanes into equally-aligned segments) or when the
  address fully resolves per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .diagnostics import Diagnostic, diag
from .framework import AnalysisManager, LaunchShape, Pass
from .symeval import MemAccess, SymbolicFacts


@dataclass
class SitePrediction:
    """Static prediction for one memory instruction.

    Attributes:
        pc: The instruction.
        op: Opcode.
        space: "shared" or "global".
        comparable: The prediction is sound for this site (addresses
            resolved, shift-invariance argument applies).
        phases: Shared only -- worst per-warp serialization phases
            (1 = conflict-free).
        transactions_per_access: Global only -- mean transactions per
            executed warp access.
        ideal_transactions_per_access: Global only -- minimum possible
            given lane count and segment size.
    """

    pc: int
    op: str
    space: str
    comparable: bool
    phases: int = 1
    transactions_per_access: float = 0.0
    ideal_transactions_per_access: float = 0.0


@dataclass
class StaticMemReport:
    """All per-site predictions for one kernel."""

    kernel: str
    sites: List[SitePrediction] = field(default_factory=list)

    @property
    def smem_comparable(self) -> bool:
        """Every shared access has a sound conflict prediction."""
        shared = [s for s in self.sites if s.space == "shared"]
        return all(s.comparable for s in shared)

    @property
    def smem_conflict_free(self) -> bool:
        return all(s.phases <= 1 for s in self.sites
                   if s.space == "shared" and s.comparable)

    @property
    def global_comparable(self) -> bool:
        gl = [s for s in self.sites if s.space == "global"]
        return bool(gl) and all(s.comparable for s in gl)

    def global_txn_bounds(self) -> Optional[tuple]:
        """(min, max) predicted transactions per warp access."""
        ratios = [s.transactions_per_access for s in self.sites
                  if s.space == "global" and s.comparable]
        if not ratios:
            return None
        return min(ratios), max(ratios)


def _warp_slices(mask: np.ndarray, warp_size: int) -> List[np.ndarray]:
    """Per-warp boolean lane masks covering the block."""
    out = []
    for start in range(0, len(mask), warp_size):
        w = np.zeros(len(mask), dtype=bool)
        w[start:start + warp_size] = True
        w &= mask
        if w.any():
            out.append(w)
    return out


def predict_smem_site(acc: MemAccess, shape: LaunchShape) -> SitePrediction:
    """Worst-case per-warp bank phases for one shared access."""
    pred = SitePrediction(pc=acc.pc, op=acc.op, space="shared",
                          comparable=False)
    if not acc.analyzable:
        return pred
    assert acc.addr_vec is not None
    # A uniform shift permutes banks bijectively, so the phase count is
    # base-independent -- provided the shift is a whole number of
    # words, which holds when every unknown coefficient is integral.
    if any(c != int(c) for c in acc.addr_syms.values()):
        return pred
    pred.comparable = True
    worst = 1
    for w in _warp_slices(acc.mask, shape.warp_size):
        addrs = acc.addr_vec[w].astype(np.int64)
        distinct = np.unique(addrs)
        if len(distinct) == 0:
            continue
        _banks, counts = np.unique(distinct % shape.smem_banks,
                                   return_counts=True)
        worst = max(worst, int(counts.max()))
    pred.phases = worst
    return pred


def predict_global_site(acc: MemAccess,
                        shape: LaunchShape) -> SitePrediction:
    """Mean transactions per warp access for one global access."""
    pred = SitePrediction(pc=acc.pc, op=acc.op, space="global",
                          comparable=False)
    if not acc.analyzable:
        return pred
    assert acc.addr_vec is not None
    seg_words = shape.coalesce_segment_bytes // shape.word_bytes
    # Segment grouping shifts with the base, so a sound prediction
    # needs every unknown coefficient to be a whole number of
    # segments (the shift then maps segments to segments).
    if any(c != int(c) or int(c) % seg_words != 0
           for c in acc.addr_syms.values()):
        return pred
    pred.comparable = True
    total_txns = 0
    total_ideal = 0.0
    warps = _warp_slices(acc.mask, shape.warp_size)
    for w in warps:
        addrs = acc.addr_vec[w].astype(np.int64)
        total_txns += len(np.unique(addrs // seg_words))
        total_ideal += max(1.0, np.ceil(len(addrs) / seg_words))
    n = max(1, len(warps))
    pred.transactions_per_access = total_txns / n
    pred.ideal_transactions_per_access = total_ideal / n
    return pred


def predict_memory(facts: SymbolicFacts, shape: LaunchShape,
                   kernel_name: str) -> StaticMemReport:
    """Static bank-conflict and coalescing predictions for a kernel."""
    report = StaticMemReport(kernel=kernel_name)
    for acc in facts.smem_accesses():
        report.sites.append(predict_smem_site(acc, shape))
    for acc in facts.global_accesses():
        report.sites.append(predict_global_site(acc, shape))
    return report


class MemoryLintPass(Pass):
    """Turn the predictions into M001/M002 diagnostics."""

    name = "memory-lints"
    needs_cfg = True

    def run(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        report = predict_memory(am.symbolic, am.shape, am.kernel.name)
        for site in report.sites:
            if site.space == "shared" and site.comparable \
                    and site.phases > 1:
                out.append(diag(
                    "M001", am.kernel.name,
                    f"{site.op} serializes into {site.phases} phases "
                    f"on {am.shape.smem_banks} banks "
                    f"({site.phases}-way bank conflict)",
                    pc=site.pc, phases=site.phases))
            if site.space == "global" and site.comparable \
                    and site.ideal_transactions_per_access > 0 \
                    and site.transactions_per_access \
                    >= 2 * site.ideal_transactions_per_access:
                out.append(diag(
                    "M002", am.kernel.name,
                    f"{site.op} needs "
                    f"{site.transactions_per_access:.1f} transactions "
                    f"per warp access where "
                    f"{site.ideal_transactions_per_access:.0f} would "
                    f"suffice (poor coalescing)",
                    pc=site.pc,
                    transactions=site.transactions_per_access,
                    ideal=site.ideal_transactions_per_access))
        return out
