"""Static detection of uninitialized shared-memory reads (rule U001).

Shared memory starts each block's life zeroed by the *simulator*, but
CUDA gives no such guarantee -- a kernel whose ``LDS`` touches words no
``STS`` ever writes is reading garbage on real hardware.  The pass
proves that with whole-kernel set semantics: the union of every
statically-resolved store's address set is the initialized region, and
any resolved load word outside it is flagged.

Whole-kernel (not flow-sensitive) semantics is deliberate: it matches
exactly what the runtime sanitizer's ``S001`` check observes (per-PC
read sets minus the union of all words the block ever wrote), so the
fuzzer's precision/recall grading compares like with like.  A load that
races ahead of its own initialization is the race detector's business
(R002), not this pass's.

Soundness discipline -- the rule says *provably*:

* any store whose address set cannot be fully resolved makes the
  initialized region unknowable, so the pass bails without findings;
* a load only counts when its own address set and participation mask
  are exact -- an over-approximated read set could flag words never
  actually read.

With zero shared stores, every resolved shared load is trivially
reading uninitialized memory.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from .diagnostics import Diagnostic, diag
from .framework import AnalysisManager, Pass

#: How many example word addresses a diagnostic's ``data`` carries
#: (mirrors the sanitizer's convention).
EXAMPLE_WORDS = 8


class UninitSharedPass(Pass):
    """Resolved LDS words outside the union of all STS address sets."""

    name = "uninit-shared"
    needs_cfg = True

    def run(self, am: AnalysisManager) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        smem = am.symbolic.smem_accesses()
        loads = [a for a in smem if not a.is_store]
        stores = [a for a in smem if a.is_store]
        if not loads:
            return out
        # An unresolvable store could initialize anything: no claim.
        if any(not s.base_resolves for s in stores):
            return out
        words = am.kernel.smem_words
        ctaids = sorted({0, max(0, am.shape.grid - 1)})
        flagged: Set[int] = set()
        for ctaid in ctaids:
            written = np.zeros(max(1, words), dtype=bool)
            for s in stores:
                addrs = s.addresses(ctaid)
                addrs = addrs[(addrs >= 0) & (addrs < words)]
                written[addrs] = True
            for ld in loads:
                if ld.pc in flagged or not ld.base_resolves \
                        or not ld.exact:
                    continue
                addrs = ld.addresses(ctaid)
                addrs = addrs[(addrs >= 0) & (addrs < words)]
                uninit = np.unique(addrs[~written[addrs]])
                if uninit.size:
                    flagged.add(ld.pc)
                    out.append(diag(
                        "U001", am.kernel.name,
                        f"{ld.op} reads {uninit.size} shared word(s) "
                        f"no store in the kernel ever writes",
                        pc=ld.pc,
                        words=[int(w) for w in uninit[:EXAMPLE_WORDS]],
                        n_words=int(uninit.size), ctaid=ctaid))
        out.sort(key=lambda d: d.pc if d.pc is not None else -1)
        return out
