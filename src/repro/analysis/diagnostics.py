"""The shared diagnostic model of the static analyzer.

Every analysis pass reports findings as :class:`Diagnostic` records --
a rule id from the catalogue below, a severity, the kernel and PC it
anchors to, and a human-readable message.  Keeping one shared model (in
the spirit of compiler diagnostics) lets the CLI render text or JSON,
lets CI gate on error severity, and lets tests golden-match rule ids
instead of message strings.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        """Parse a severity from its lowercase name."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}; "
                             f"have {[str(s) for s in cls]}") from None


@dataclass(frozen=True)
class Rule:
    """One catalogue entry: stable id, default severity, summary."""

    rule_id: str
    severity: Severity
    title: str


#: The rule catalogue.  Ids are stable API: tests and CI gate on them.
#: ``V*`` = verifier (structural/dataflow well-formedness), ``D*`` =
#: divergence, ``R*`` = shared-memory races, ``M*`` = memory lints,
#: ``U*`` = uninitialized-read lints, ``S*`` = runtime sanitizer
#: findings (:mod:`repro.sim.sanitizer` -- dynamic ground truth the
#: static rules are graded against).
RULES: Dict[str, Rule] = {r.rule_id: r for r in (
    # -- verifier -----------------------------------------------------------
    Rule("V001", Severity.ERROR,
         "register may be read before it is written"),
    Rule("V002", Severity.ERROR,
         "predicate may be read before it is written"),
    Rule("V003", Severity.ERROR,
         "operand arity or kind mismatch for opcode"),
    Rule("V004", Severity.ERROR,
         "branch target outside the program or unresolved"),
    Rule("V005", Severity.ERROR,
         "conditional branch reconvergence PC missing or wrong"),
    Rule("V006", Severity.ERROR,
         "no EXIT reachable from kernel entry"),
    Rule("V007", Severity.WARNING,
         "unreachable code"),
    Rule("V008", Severity.ERROR,
         "register index outside the kernel's declared register count"),
    # -- divergence --------------------------------------------------------
    Rule("D001", Severity.ERROR,
         "BAR reachable under divergent control flow (barrier deadlock)"),
    Rule("D002", Severity.WARNING,
         "divergent branch reconverges only at kernel exit"),
    # -- shared-memory races -----------------------------------------------
    Rule("R001", Severity.ERROR,
         "write-write shared-memory overlap within a barrier interval"),
    Rule("R002", Severity.ERROR,
         "read-write shared-memory overlap within a barrier interval"),
    Rule("R003", Severity.INFO,
         "shared-memory address not statically analyzable"),
    # -- memory lints ------------------------------------------------------
    Rule("M001", Severity.WARNING,
         "shared-memory access has static bank conflicts"),
    Rule("M002", Severity.WARNING,
         "poorly coalesced global-memory access"),
    Rule("M003", Severity.ERROR,
         "shared-memory access provably out of bounds"),
    # -- uninitialized reads -----------------------------------------------
    Rule("U001", Severity.WARNING,
         "read of provably-uninitialized shared memory"),
    # -- runtime sanitizer -------------------------------------------------
    Rule("S001", Severity.WARNING,
         "runtime read of uninitialized memory"),
    Rule("S002", Severity.ERROR,
         "runtime out-of-bounds memory access"),
    Rule("S003", Severity.ERROR,
         "dynamic shared-memory race within a barrier interval"),
    Rule("S004", Severity.ERROR,
         "barrier deadlock detected at runtime"),
)}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes:
        rule: Rule id from :data:`RULES`.
        severity: Effective severity (defaults to the rule's).
        kernel: Kernel name the finding belongs to.
        message: Human-readable description.
        pc: Anchoring program counter, when the finding has one.
        data: Structured details (counts, operands, addresses) for
            machine consumers; values must be JSON-serializable.
    """

    rule: str
    severity: Severity
    kernel: str
    message: str
    pc: Optional[int] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")

    @property
    def title(self) -> str:
        """The catalogue title of this diagnostic's rule."""
        return RULES[self.rule].title

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "kernel": self.kernel,
            "message": self.message,
        }
        if self.pc is not None:
            out["pc"] = self.pc
        if self.data:
            out["data"] = dict(self.data)
        return out

    def format(self) -> str:
        """One-line rendering: ``kernel:pc: severity[rule] message``."""
        where = f"{self.kernel}:{self.pc}" if self.pc is not None \
            else self.kernel
        return f"{where}: {self.severity}[{self.rule}] {self.message}"


def diag(rule: str, kernel: str, message: str, pc: Optional[int] = None,
         severity: Optional[Severity] = None, **data: Any) -> Diagnostic:
    """Build a :class:`Diagnostic` with the rule's default severity."""
    return Diagnostic(rule=rule,
                      severity=severity or RULES[rule].severity,
                      kernel=kernel, message=message, pc=pc, data=data)


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """Highest severity present, or None for a clean result."""
    if not diagnostics:
        return None
    return max(d.severity for d in diagnostics)


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    """True when any diagnostic is error-severity."""
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Multi-line text rendering, errors first within each kernel."""
    ordered = sorted(diagnostics,
                     key=lambda d: (d.kernel, -int(d.severity),
                                    d.pc if d.pc is not None else -1,
                                    d.rule))
    return "\n".join(d.format() for d in ordered)


def diagnostics_to_json(diagnostics: Sequence[Diagnostic],
                        indent: int = 2) -> str:
    """JSON array rendering (the ``--format json`` CLI output)."""
    return json.dumps([d.to_dict() for d in diagnostics], indent=indent)
