"""The pass framework of the static analyzer.

An :class:`AnalysisManager` owns one kernel plus its launch shape and
lazily computes the facts the passes share -- CFG, dominators and
post-dominators (from :mod:`repro.isa.cfg`), register/predicate
liveness, and the symbolic per-thread evaluation
(:mod:`repro.analysis.symeval`).  Each fact is computed once and
cached, so a pipeline of passes pays for the expensive ones (the
symbolic fixpoint) exactly once.

A :class:`Pass` turns cached facts into :class:`Diagnostic` records.
:func:`run_passes` runs the default pipeline with the one ordering
constraint that matters: CFG-dependent passes are skipped when the
structural verifier found errors, because a malformed program (wild
branch targets, bad operands) has no trustworthy CFG to analyze.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..isa.cfg import (EXIT_PC_SENTINEL, basic_block_leaders, build_cfg,
                       dominators, immediate_post_dominators,
                       post_dominators, predecessors)
from ..isa.instructions import Instruction, Pred, Reg
from ..isa.kernel import Kernel
from .diagnostics import Diagnostic, Severity
from .symeval import SymbolicEvaluator, SymbolicFacts


@dataclass(frozen=True)
class LaunchShape:
    """The launch geometry the analyses evaluate the kernel under.

    The symbolic evaluation is concrete in ``tid``, so the analyses are
    specific to a block size -- exactly like the simulator itself.

    Attributes:
        n_threads: Threads per block.
        grid: Number of blocks.
        warp_size: Lanes per warp.
        smem_banks: Shared-memory banks (bank-conflict lint).
        coalesce_segment_bytes: Coalescer segment size (coalescing lint).
        word_bytes: Bytes per ISA word (addresses are word-granular).
    """

    n_threads: int
    grid: int = 1
    warp_size: int = 32
    smem_banks: int = 16
    coalesce_segment_bytes: int = 128
    word_bytes: int = 4


@dataclass(frozen=True)
class BlockLiveness:
    """Live register/predicate indices at basic-block boundaries."""

    live_in: Dict[int, Set[int]]
    live_out: Dict[int, Set[int]]
    pred_live_in: Dict[int, Set[int]]
    pred_live_out: Dict[int, Set[int]]


def instruction_uses(inst: Instruction) -> Tuple[List[int], List[int]]:
    """(register indices, predicate indices) read by one instruction."""
    regs = [s.index for s in inst.srcs if isinstance(s, Reg)]
    preds: List[int] = []
    if inst.guard is not None:
        preds.append(inst.guard[0].index)
    sel = getattr(inst, "sel_pred", None)
    if isinstance(sel, Pred):
        preds.append(sel.index)
    return regs, preds


def instruction_defs(inst: Instruction) -> Tuple[Optional[int],
                                                 Optional[int]]:
    """(register index, predicate index) written by one instruction."""
    if isinstance(inst.dst, Reg):
        return inst.dst.index, None
    if isinstance(inst.dst, Pred):
        return None, inst.dst.index
    return None, None


class AnalysisManager:
    """Cached per-kernel facts shared by every pass.

    Facts are properties that compute on first access and memoize; a
    pass just reads what it needs.  CFG-derived facts assume the
    structural verifier found no errors (callers enforce that via
    :func:`run_passes`).
    """

    def __init__(self, kernel: Kernel, shape: LaunchShape) -> None:
        self.kernel = kernel
        self.shape = shape
        self._cache: Dict[str, object] = {}

    def _memo(self, key: str, build: Callable[[], object]) -> object:
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    @property
    def instructions(self) -> Sequence[Instruction]:
        return self.kernel.instructions

    @property
    def leaders(self) -> List[int]:
        return self._memo(  # type: ignore[return-value]
            "leaders", lambda: basic_block_leaders(self.instructions))

    @property
    def cfg(self) -> Dict[int, List[int]]:
        return self._memo(  # type: ignore[return-value]
            "cfg", lambda: build_cfg(self.instructions))

    @property
    def preds(self) -> Dict[int, List[int]]:
        return self._memo(  # type: ignore[return-value]
            "preds", lambda: predecessors(self.cfg))

    @property
    def dom(self) -> Dict[int, Set[int]]:
        return self._memo(  # type: ignore[return-value]
            "dom", lambda: dominators(self.cfg))

    @property
    def pdom(self) -> Dict[int, Set[int]]:
        return self._memo(  # type: ignore[return-value]
            "pdom", lambda: post_dominators(self.cfg))

    @property
    def ipdom(self) -> Dict[int, int]:
        return self._memo(  # type: ignore[return-value]
            "ipdom", lambda: immediate_post_dominators(self.cfg))

    @property
    def block_ranges(self) -> Dict[int, int]:
        """Leader PC -> one-past-the-end PC of its block."""
        def build() -> Dict[int, int]:
            out: Dict[int, int] = {}
            for i, leader in enumerate(self.leaders):
                out[leader] = self.leaders[i + 1] \
                    if i + 1 < len(self.leaders) else len(self.instructions)
            return out
        return self._memo("block_ranges", build)  # type: ignore[return-value]

    @property
    def block_of(self) -> Dict[int, int]:
        """PC -> leader PC of the block containing it."""
        def build() -> Dict[int, int]:
            out: Dict[int, int] = {}
            for leader, end in self.block_ranges.items():
                for pc in range(leader, end):
                    out[pc] = leader
            return out
        return self._memo("block_of", build)  # type: ignore[return-value]

    @property
    def reachable_blocks(self) -> Set[int]:
        """Block leaders reachable from the entry block."""
        def build() -> Set[int]:
            if not self.leaders:
                return set()
            seen: Set[int] = set()
            stack = [self.leaders[0]]
            while stack:
                node = stack.pop()
                if node in seen or node == EXIT_PC_SENTINEL:
                    continue
                seen.add(node)
                stack.extend(self.cfg[node])
            return seen
        return self._memo("reachable", build)  # type: ignore[return-value]

    @property
    def liveness(self) -> BlockLiveness:
        """Backward register/predicate liveness over the block CFG."""
        return self._memo(  # type: ignore[return-value]
            "liveness", self._compute_liveness)

    def _compute_liveness(self) -> BlockLiveness:
        use: Dict[int, Set[int]] = {}
        deff: Dict[int, Set[int]] = {}
        puse: Dict[int, Set[int]] = {}
        pdef: Dict[int, Set[int]] = {}
        for leader, end in self.block_ranges.items():
            u: Set[int] = set()
            d: Set[int] = set()
            pu: Set[int] = set()
            pd: Set[int] = set()
            for pc in range(leader, end):
                inst = self.instructions[pc]
                regs, preds = instruction_uses(inst)
                u.update(r for r in regs if r not in d)
                pu.update(p for p in preds if p not in pd)
                rdef, pdef_idx = instruction_defs(inst)
                if rdef is not None:
                    d.add(rdef)
                if pdef_idx is not None:
                    pd.add(pdef_idx)
            use[leader], deff[leader] = u, d
            puse[leader], pdef[leader] = pu, pd
        live_in: Dict[int, Set[int]] = {n: set() for n in self.block_ranges}
        live_out: Dict[int, Set[int]] = {n: set() for n in self.block_ranges}
        plive_in: Dict[int, Set[int]] = {n: set() for n in self.block_ranges}
        plive_out: Dict[int, Set[int]] = {n: set() for n in self.block_ranges}
        changed = True
        while changed:
            changed = False
            for leader in reversed(self.leaders):
                out: Set[int] = set()
                pout: Set[int] = set()
                for succ in self.cfg[leader]:
                    if succ != EXIT_PC_SENTINEL:
                        out |= live_in[succ]
                        pout |= plive_in[succ]
                new_in = use[leader] | (out - deff[leader])
                pnew_in = puse[leader] | (pout - pdef[leader])
                if out != live_out[leader] or new_in != live_in[leader] \
                        or pout != plive_out[leader] \
                        or pnew_in != plive_in[leader]:
                    live_out[leader], live_in[leader] = out, new_in
                    plive_out[leader], plive_in[leader] = pout, pnew_in
                    changed = True
        return BlockLiveness(live_in, live_out, plive_in, plive_out)

    @property
    def symbolic(self) -> SymbolicFacts:
        """Symbolic per-thread evaluation (the expensive fact)."""
        def build() -> SymbolicFacts:
            return SymbolicEvaluator(
                self.kernel, self.shape.n_threads, self.shape.warp_size,
                self.shape.grid).run()
        return self._memo("symbolic", build)  # type: ignore[return-value]


class Pass:
    """One analysis pass: cached facts in, diagnostics out.

    Attributes:
        name: Stable pass name (shows up in pass listings and docs).
        needs_cfg: Pass reads CFG-derived facts and must be skipped
            when the structural verifier reported errors.
    """

    name: str = "?"
    needs_cfg: bool = True

    def run(self, am: AnalysisManager) -> List[Diagnostic]:
        raise NotImplementedError


@dataclass
class AnalysisResult:
    """Outcome of one analyzer pipeline over one kernel."""

    kernel: str
    shape: LaunchShape
    diagnostics: List[Diagnostic] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)
    passes_skipped: List[str] = field(default_factory=list)


def default_passes() -> List[Pass]:
    """The standard pipeline, in dependency order."""
    from .divergence import DivergencePass
    from .memlints import MemoryLintPass
    from .races import SmemRacePass
    from .uninit import UninitSharedPass
    from .verifier import CfgVerifierPass, StructuralVerifierPass
    return [StructuralVerifierPass(), CfgVerifierPass(),
            DivergencePass(), SmemRacePass(), UninitSharedPass(),
            MemoryLintPass()]


def run_passes(kernel: Kernel, shape: LaunchShape,
               passes: Optional[Sequence[Pass]] = None) -> AnalysisResult:
    """Run a pass pipeline over one kernel.

    Structural errors (malformed instructions, wild branch targets)
    poison every CFG-derived fact, so any error reported by a
    non-CFG pass short-circuits the CFG-dependent remainder.
    """
    am = AnalysisManager(kernel, shape)
    result = AnalysisResult(kernel=kernel.name, shape=shape)
    structural_errors = False
    for p in passes if passes is not None else default_passes():
        if p.needs_cfg and structural_errors:
            result.passes_skipped.append(p.name)
            continue
        found = p.run(am)
        result.diagnostics.extend(found)
        result.passes_run.append(p.name)
        if not p.needs_cfg and any(
                d.severity >= Severity.ERROR for d in found):
            structural_errors = True
    return result
