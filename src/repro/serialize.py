"""One serialization surface for every result object.

The reproduction's result types -- :class:`~repro.sim.activity.ActivityReport`,
:class:`~repro.power.result.PowerReport`,
:class:`~repro.core.gpusimpow.SimulationResult`,
:class:`~repro.telemetry.PowerTrace`, :class:`~repro.sim.config.GPUConfig` --
all expose the same ``to_dict() / from_dict() / to_json() / from_json()``
quartet, implemented once here instead of hand-rolled per class.

Two layers:

* :class:`Serializable` -- a mixin deriving the JSON pair from the dict
  pair, so classes only implement ``to_dict``/``from_dict``;
* :func:`scalar_fields_to_dict` / :func:`scalar_fields_from_dict` -- the
  common case of a flat dataclass of int/float/bool/str fields (activity
  counters, GPU configurations), with strict unknown-key rejection so a
  stale or foreign payload can never silently load as zeros.

JSON floats round-trip exactly in Python (repr-based), so a serialised
result is bit-identical to the in-memory one -- the property the runner
cache and the determinism tests rest on.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Type, TypeVar

T = TypeVar("T")

#: Canonical JSON rendering shared by every ``to_json``: stable key
#: order, light indentation (diff-able artifacts, identical bytes for
#: identical results).
JSON_KWARGS = {"indent": 1, "sort_keys": True}


def dump_json(data: Any) -> str:
    """Serialise ``data`` with the canonical formatting."""
    return json.dumps(data, **JSON_KWARGS)


class Serializable:
    """Mixin: classes implement the dict pair, inherit the JSON pair."""

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    @classmethod
    def from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
        raise NotImplementedError

    def to_json(self) -> str:
        """Serialise to JSON (via :meth:`to_dict`)."""
        return dump_json(self.to_dict())

    @classmethod
    def from_json(cls: Type[T], text: str) -> T:
        """Load an instance serialised by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def scalar_fields_to_dict(obj, sparse: bool = False) -> Dict[str, Any]:
    """Plain dict of a flat dataclass's fields (stable field order).

    Args:
        sparse: Drop zero-valued entries (compact transport for the
            mostly-empty per-window activity deltas); ``from`` fills the
            defaults back in.
    """
    out = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if sparse and (value == 0 or value == 0.0) and not isinstance(value, str):
            continue
        out[f.name] = value
    return out


def scalar_fields_from_dict(cls: Type[T], data: Dict[str, Any],
                            label: str = "fields") -> T:
    """Rebuild a flat dataclass from :func:`scalar_fields_to_dict` output.

    Missing keys keep their defaults (partial payloads are valid);
    unknown keys raise ``ValueError`` naming ``label`` (stale or foreign
    payloads fail loudly).  Values are coerced to the default's type so
    JSON round-trips preserve int-ness.
    """
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {label}: {sorted(unknown)}")
    defaults = cls()
    kwargs = {}
    for name, value in data.items():
        current = getattr(defaults, name)
        if isinstance(current, bool):
            value = bool(value)
        elif isinstance(current, int) and not isinstance(value, bool):
            value = int(value)
        elif isinstance(current, float):
            value = float(value)
        kwargs[name] = value
    # Construct through __init__ so dataclass validation hooks
    # (e.g. GPUConfig.__post_init__) see the loaded values.
    return cls(**kwargs)


def keyword_only(cls):
    """Class decorator making a dataclass's ``__init__`` keyword-only.

    Portable to Python 3.9 (``dataclass(kw_only=True)`` needs 3.10).
    Used by :class:`~repro.sim.config.GPUConfig` so positional-argument
    drift can never silently bind a value to the wrong parameter as
    fields are added or reordered.
    """
    generated_init = cls.__init__

    def __init__(self, *args, **kwargs):
        if args:
            raise TypeError(
                f"{cls.__name__} parameters are keyword-only; got "
                f"{len(args)} positional argument(s)")
        generated_init(self, **kwargs)

    __init__.__wrapped__ = generated_init
    cls.__init__ = __init__
    return cls
