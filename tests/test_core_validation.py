"""Tests for the validation harness (sim-vs-hardware comparison).

Uses a reduced kernel set to stay fast; the full 19-kernel statistics of
Section V-A are asserted in the Fig. 6 benchmark harness.
"""

import pytest

from repro import gt240, gtx580, validate_suite

SUBSET = ["BlackScholes", "vectorAdd", "matrixMul", "bfs2", "hotspot"]


@pytest.fixture(scope="module")
def suite_gt240():
    return validate_suite(gt240(), kernel_names=SUBSET)


@pytest.fixture(scope="module")
def suite_gtx580():
    return validate_suite(gtx580(), kernel_names=SUBSET)


class TestSuiteStructure:
    def test_one_row_per_kernel(self, suite_gt240):
        assert [k.kernel for k in suite_gt240.kernels] == SUBSET

    def test_rows_consistent(self, suite_gt240):
        for k in suite_gt240.kernels:
            assert k.simulated_total_w > k.simulated_static_w > 0
            assert k.measured_total_w > 0
            assert 0 <= k.relative_error < 1.0

    def test_measured_dynamic_positive(self, suite_gt240):
        for k in suite_gt240.kernels:
            assert k.measured_dynamic_w > 0


class TestStaticMethodology:
    def test_gt240_uses_extrapolation(self, suite_gt240):
        # The GT240's hardware static estimate lands near the card truth.
        assert suite_gt240.hardware_static_w == pytest.approx(17.6, rel=0.06)

    def test_gtx580_uses_idle_ratio(self, suite_gtx580):
        """Driver refuses clock scaling -> idle-ratio transfer (~80 W)."""
        assert suite_gtx580.hardware_static_w == pytest.approx(80.0, rel=0.06)

    def test_simulated_static_close_to_hardware(self, suite_gt240,
                                                suite_gtx580):
        # Paper: 0.3 W (1.7%) apart on GT240; near-exact on GTX580.
        for suite in (suite_gt240, suite_gtx580):
            assert suite.simulated_static_w == pytest.approx(
                suite.hardware_static_w, rel=0.06)


class TestErrorShapes:
    def test_subset_error_in_band(self, suite_gt240):
        assert suite_gt240.average_relative_error < 0.25

    def test_blackscholes_underestimated_on_gt240(self, suite_gt240):
        """Paper: the simulator overestimates all benchmarks *but*
        BlackScholes and scalarProd on the GT240."""
        row = next(k for k in suite_gt240.kernels
                   if k.kernel == "BlackScholes")
        assert not row.overestimated

    def test_gtx580_mostly_overestimates(self, suite_gtx580):
        assert suite_gtx580.overestimate_fraction >= 0.8

    def test_dynamic_error_exceeds_total_error(self, suite_gt240):
        """Static power matches well, so errors concentrate in the
        dynamic part -- dynamic-only relative error is larger."""
        assert (suite_gt240.average_dynamic_error
                > suite_gt240.average_relative_error)

    def test_worst_kernel_reported(self, suite_gt240):
        assert suite_gt240.worst_kernel in SUBSET
        assert suite_gt240.max_relative_error >= \
            suite_gt240.average_relative_error


class TestDeterminism:
    def test_same_seed_same_numbers(self):
        a = validate_suite(gt240(), kernel_names=["vectorAdd"], seed=99)
        b = validate_suite(gt240(), kernel_names=["vectorAdd"], seed=99)
        assert a.kernels[0].measured_total_w == b.kernels[0].measured_total_w

    def test_different_seed_different_noise(self):
        a = validate_suite(gt240(), kernel_names=["vectorAdd"], seed=1)
        b = validate_suite(gt240(), kernel_names=["vectorAdd"], seed=2)
        assert a.kernels[0].measured_total_w != b.kernels[0].measured_total_w
