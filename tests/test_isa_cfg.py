"""Unit tests for control-flow analysis (post-dominator reconvergence)."""

from repro.isa.cfg import (EXIT_PC_SENTINEL, basic_block_leaders, build_cfg,
                           immediate_post_dominators, post_dominators)
from repro.isa.instructions import Instruction, Pred, Reg


def straightline(n):
    return [Instruction("NOP") for _ in range(n - 1)] + [Instruction("EXIT")]


def diamond():
    """0:BRA->3  1:NOP 2:JMP->4  3:NOP  4:EXIT"""
    return [
        Instruction("BRA", guard=(Pred(0), True), target=3),
        Instruction("NOP"),
        Instruction("JMP", target=4),
        Instruction("NOP"),
        Instruction("EXIT"),
    ]


class TestLeaders:
    def test_straightline_single_block(self):
        assert basic_block_leaders(straightline(4)) == [0]

    def test_branch_splits_blocks(self):
        assert basic_block_leaders(diamond()) == [0, 1, 3, 4]

    def test_empty_program(self):
        assert basic_block_leaders([]) == []


class TestCFG:
    def test_diamond_edges(self):
        cfg = build_cfg(diamond())
        assert set(cfg[0]) == {3, 1}
        assert cfg[1] == [4]
        assert cfg[3] == [4]
        assert cfg[4] == [EXIT_PC_SENTINEL]

    def test_straightline_flows_to_exit(self):
        cfg = build_cfg(straightline(3))
        assert cfg[0] == [EXIT_PC_SENTINEL]


class TestPostDominators:
    def test_diamond_join_postdominates_all(self):
        cfg = build_cfg(diamond())
        pdom = post_dominators(cfg)
        for node in (0, 1, 3):
            assert 4 in pdom[node]

    def test_branch_sides_do_not_postdominate_entry(self):
        cfg = build_cfg(diamond())
        pdom = post_dominators(cfg)
        assert 1 not in pdom[0] or 1 == 0
        assert 3 not in pdom[0]

    def test_ipdom_of_diamond_entry_is_join(self):
        cfg = build_cfg(diamond())
        ipdom = immediate_post_dominators(cfg)
        assert ipdom[0] == 4

    def test_ipdom_nested(self):
        # 0:BRA->5 1:NOP 2:BRA->4 3:NOP 4:JMP->5 5:EXIT
        prog = [
            Instruction("BRA", guard=(Pred(0), True), target=5),
            Instruction("NOP"),
            Instruction("BRA", guard=(Pred(1), True), target=4),
            Instruction("NOP"),
            Instruction("JMP", target=5),
            Instruction("EXIT"),
        ]
        cfg = build_cfg(prog)
        ipdom = immediate_post_dominators(cfg)
        assert ipdom[0] == 5     # outer reconverges at exit block
        assert ipdom[3] == 4     # inner at the inner join

    def test_multiple_exits_use_sentinel(self):
        # 0:BRA->2 1:EXIT 2:EXIT -- no common postdominator but sentinel
        prog = [
            Instruction("BRA", guard=(Pred(0), True), target=2),
            Instruction("EXIT"),
            Instruction("EXIT"),
        ]
        cfg = build_cfg(prog)
        ipdom = immediate_post_dominators(cfg)
        assert ipdom[0] == EXIT_PC_SENTINEL


class TestEdgeCases:
    def test_leaders_reject_out_of_range_target(self):
        import pytest
        prog = [Instruction("BRA", guard=(Pred(0), True), target=7),
                Instruction("EXIT")]
        with pytest.raises(ValueError, match="target"):
            basic_block_leaders(prog)

    def test_unreachable_block_keeps_post_dominators_sound(self):
        # 0:JMP->2  1:NOP (unreachable)  2:EXIT
        prog = [Instruction("JMP", target=2),
                Instruction("NOP"),
                Instruction("EXIT")]
        cfg = build_cfg(prog)
        pdom = post_dominators(cfg)
        assert 2 in pdom[0]
        ipdom = immediate_post_dominators(cfg)
        assert ipdom[0] == 2
