"""Tests for the warp scheduling policies (rr / gto / two_level)."""

import numpy as np
import pytest

from repro.sim import gt240, simulate
from repro.sim.core import Core
from repro.sim.memsys import MemorySystem
from repro.workloads import all_kernel_launches, matmul
from tests.conftest import build_vecadd_launch

POLICIES = ("rr", "gto", "two_level")


class TestConfig:
    def test_presets_default_rr(self):
        assert gt240().warp_scheduler == "rr"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            gt240().scaled(warp_scheduler="lottery")

    def test_group_size_validated(self):
        with pytest.raises(ValueError):
            gt240().scaled(scheduler_group_size=0)


class TestScanOrder:
    def make_core(self, policy, n_warps=8):
        cfg = gt240().scaled(warp_scheduler=policy)
        core = Core(0, cfg, MemorySystem(cfg))
        core.warps = [object()] * n_warps  # only the length matters
        return core

    def test_rr_rotates(self):
        core = self.make_core("rr")
        core._rr = 3
        assert core._scan_order()[:3] == [3, 4, 5]
        assert sorted(core._scan_order()) == list(range(8))

    def test_gto_revisits_last_first(self):
        core = self.make_core("gto")
        core._last_issued = 5
        order = core._scan_order()
        assert order[0] == 5
        assert sorted(order) == list(range(8))

    def test_gto_clamps_stale_index(self):
        core = self.make_core("gto", n_warps=4)
        core._last_issued = 40
        assert core._scan_order()[0] == 3

    def test_two_level_prefers_active_group(self):
        cfg = gt240().scaled(warp_scheduler="two_level",
                             scheduler_group_size=4)
        core = Core(0, cfg, MemorySystem(cfg))
        core.warps = [object()] * 8
        core._active_group = 1
        order = core._scan_order()
        assert order[:4] == [4, 5, 6, 7]
        assert sorted(order) == list(range(8))


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_vecadd_correct_under_all_policies(self, policy):
        launch, x, y = build_vecadd_launch()
        out = simulate(gt240().scaled(warp_scheduler=policy), launch)
        assert np.allclose(out.gmem[512:768], x + y)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_matmul_correct_under_all_policies(self, policy, launches):
        l = launches["matrixMul"]
        out = simulate(gt240().scaled(warp_scheduler=policy), l)
        ref = matmul.reference(l.globals_init[matmul.A_OFF],
                               l.globals_init[matmul.B_OFF])
        assert np.allclose(out.gmem[matmul.C_OFF:
                                    matmul.C_OFF + matmul.DIM ** 2], ref)


class TestTimingDiffers:
    def test_policies_produce_different_schedules(self, launches):
        cycles = {p: simulate(gt240().scaled(warp_scheduler=p),
                              launches["matrixMul"]).cycles
                  for p in POLICIES}
        assert len(set(cycles.values())) > 1

    def test_issue_counts_identical(self, launches):
        """Scheduling changes *when*, never *what*: the same warp
        instructions issue under every policy."""
        issued = {p: simulate(gt240().scaled(warp_scheduler=p),
                              launches["matrixMul"]).activity
                  .issued_instructions
                  for p in POLICIES}
        assert len(set(issued.values())) == 1
