"""Unit tests for the technology tier and Eq. 1 primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import eq1
from repro.power.tech import TABULATED_NODES, TechNode, tech_node


class TestTechNode:
    def test_tabulated_nodes_exact(self):
        for nm in TABULATED_NODES:
            assert tech_node(nm).feature_nm == nm

    def test_vdd_shrinks_with_node(self):
        assert tech_node(90).vdd > tech_node(40).vdd > tech_node(22).vdd

    def test_leakage_density_grows(self):
        assert tech_node(22).i_sub_per_um > tech_node(90).i_sub_per_um

    def test_gate_cap_shrinks(self):
        assert tech_node(22).logic_gate_cap < tech_node(90).logic_gate_cap

    def test_interpolation_between_nodes(self):
        t36 = tech_node(36)
        t40, t32 = tech_node(40), tech_node(32)
        assert t32.vdd < t36.vdd < t40.vdd
        assert t32.logic_gate_area < t36.logic_gate_area < t40.logic_gate_area

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            tech_node(10)
        with pytest.raises(ValueError):
            tech_node(180)

    def test_sram_cell_area_positive(self):
        t = tech_node(40)
        assert t.sram_cell_area > 0
        # 146 F^2 at 40 nm ~= 0.23 um^2
        assert t.sram_cell_area == pytest.approx(146 * (40e-9) ** 2)

    def test_energy_cv2_default_full_swing(self):
        t = tech_node(40)
        assert t.energy_cv2(1e-15) == pytest.approx(1e-15 * t.vdd ** 2)

    def test_energy_cv2_partial_swing(self):
        t = tech_node(40)
        full = t.energy_cv2(1e-15)
        partial = t.energy_cv2(1e-15, voltage_swing=0.1 * t.vdd)
        assert partial == pytest.approx(0.1 * full)

    @given(nm=st.floats(min_value=22, max_value=90))
    @settings(max_examples=40, deadline=None)
    def test_interpolation_monotone_bounds(self, nm):
        t = tech_node(nm)
        lo, hi = tech_node(22), tech_node(90)
        assert min(lo.vdd, hi.vdd) <= t.vdd <= max(lo.vdd, hi.vdd)
        assert t.logic_gate_cap > 0 and t.logic_gate_leak > 0


class TestEq1:
    def test_dynamic_power_formula(self):
        # P = a C V dV f
        p = eq1.dynamic_power(0.5, 1e-12, 1.0, 1.0, 1e9)
        assert p == pytest.approx(0.5e-3)

    def test_switching_energy_default(self):
        assert eq1.switching_energy(1e-15, 1.0) == pytest.approx(1e-15)

    def test_short_circuit_fraction(self):
        assert eq1.short_circuit_power(10.0, 0.1) == 1.0

    def test_leakage_power(self):
        assert eq1.leakage_power(2.0, 1.0) == 2.0

    def test_activity_factor(self):
        assert eq1.activity_factor(500, 1000) == 0.5
        assert eq1.activity_factor(500, 0) == 0.0

    def test_zero_frequency_zero_dynamic(self):
        """The premise of the paper's static-power extrapolation."""
        assert eq1.dynamic_power(1.0, 1e-12, 1.0, 1.0, 0.0) == 0.0
