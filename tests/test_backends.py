"""Tests for the pluggable simulation backends (repro.backends).

Covers the registry, the exactness contract of the ``cycle`` and
``functional_ref`` backends, the sanity envelope of the ``analytical``
estimator, backend identity in the runner cache keys, and serialization
round trips that preserve which backend produced a result.
"""

import json

import pytest

from repro.backends import (AnalyticalBackend, BackendError, CycleBackend,
                            all_backends, compare_backends, get_backend,
                            list_backends, register_backend)
from repro.core.gpusimpow import GPUSimPow, SimulationResult
from repro.runner import ResultCache, SimJob, run_jobs
from repro.runner.cache import job_key
from repro.sim import gt240, simulate
from repro.telemetry import ActivityTracer
from tests.conftest import build_vecadd_launch


class TestRegistry:
    def test_builtins_registered(self):
        assert {"cycle", "functional_ref", "analytical"} <= \
            set(list_backends())

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="registered.*cycle"):
            get_backend("quantum")

    def test_register_requires_name(self):
        class Nameless(CycleBackend):
            name = "?"
        with pytest.raises(ValueError, match="non-empty name"):
            register_backend(Nameless())

    def test_reregistration_replaces(self):
        original = get_backend("cycle")
        try:
            replacement = register_backend(CycleBackend())
            assert get_backend("cycle") is replacement
        finally:
            register_backend(original)

    def test_all_backends_is_a_copy(self):
        snapshot = all_backends()
        snapshot["bogus"] = snapshot["cycle"]
        assert "bogus" not in list_backends()


class TestCycleBackend:
    def test_bit_identical_untraced(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        direct = simulate(gt240_config, launch)
        via = get_backend("cycle").simulate(gt240_config, launch)
        assert via.cycles == direct.cycles
        assert via.activity.as_dict() == direct.activity.as_dict()

    def test_bit_identical_traced(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        direct = simulate(gt240_config, launch,
                          tracer=ActivityTracer(200.0))
        via = get_backend("cycle").simulate(gt240_config, launch,
                                            tracer=ActivityTracer(200.0))
        assert via.activity.as_dict() == direct.activity.as_dict()
        assert len(via.windows) == len(direct.windows)
        for wa, wb in zip(via.windows, direct.windows):
            assert wa.activity.as_dict() == wb.activity.as_dict()


class TestFunctionalRefBackend:
    def test_matches_cycle_backend_exactly(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        cyc = get_backend("cycle").simulate(gt240_config, launch)
        ref = get_backend("functional_ref").simulate(gt240_config, launch)
        assert ref.cycles == cyc.cycles
        assert ref.activity.as_dict() == cyc.activity.as_dict()

    def test_compare_backends_reports_exact(self, gt240_config):
        report = compare_backends(gt240_config, ["vectorAdd"],
                                  backend_a="cycle",
                                  backend_b="functional_ref",
                                  jobs=1, cache=None)
        assert report.exact_match
        assert report.mean_abs_power_error == 0.0


class TestAnalyticalBackend:
    def test_produces_plausible_result(self, gt240_config, launches):
        out = get_backend("analytical").simulate(gt240_config,
                                                 launches["vectorAdd"])
        assert out.cycles > 0
        act = out.activity
        assert act.issued_instructions > 0
        power = GPUSimPow(gt240_config).chip.evaluate(act)
        assert 0 < power.chip_total_w < 400

    def test_rejects_tracer(self, gt240_config, launches):
        with pytest.raises(BackendError, match="tracing"):
            get_backend("analytical").simulate(
                gt240_config, launches["vectorAdd"],
                tracer=ActivityTracer(100.0))

    def test_capabilities(self):
        caps = get_backend("analytical").capabilities
        assert not caps.exact
        assert not caps.supports_tracing

    def test_respects_max_cycles(self, gt240_config, launches):
        with pytest.raises(BackendError, match="max_cycles"):
            get_backend("analytical").simulate(
                gt240_config, launches["matrixMul"], max_cycles=1.0)

    def test_within_model_error_of_cycle(self, gt240_config, launches):
        """The estimator must land in the same power regime (not exact)."""
        chip = GPUSimPow(gt240_config).chip
        cyc = simulate(gt240_config, launches["pathfinder"])
        ana = get_backend("analytical").simulate(gt240_config,
                                                 launches["pathfinder"])
        w_cyc = chip.evaluate(cyc.activity).chip_total_w
        w_ana = chip.evaluate(ana.activity).chip_total_w
        assert w_ana == pytest.approx(w_cyc, rel=0.35)


class TestCacheKeys:
    def _job(self, config, backend="cycle"):
        launch, _, _ = build_vecadd_launch()
        return SimJob(config=config, kernel="tiny_vecadd", launch=launch,
                      backend=backend)

    def test_default_backend_key_unchanged(self, gt240_config):
        """`backend="cycle"` must not perturb pre-backend-era keys."""
        explicit = self._job(gt240_config, backend="cycle")
        implicit = self._job(gt240_config)
        assert job_key(explicit) == job_key(implicit)

    def test_backends_key_separately(self, gt240_config):
        assert job_key(self._job(gt240_config, "analytical")) != \
            job_key(self._job(gt240_config, "cycle"))
        assert job_key(self._job(gt240_config, "functional_ref")) != \
            job_key(self._job(gt240_config, "cycle"))

    def test_backend_version_enters_key(self, gt240_config):
        job = self._job(gt240_config, "analytical")
        original = get_backend("analytical")
        before = job_key(job)
        try:
            bumped = AnalyticalBackend()
            bumped.version = original.version + ".test"
            register_backend(bumped)
            assert job_key(job) != before
        finally:
            register_backend(original)

    def test_entry_records_backend_and_rejects_mismatch(self, tmp_path,
                                                        gt240_config):
        cache = ResultCache(tmp_path / "cache")
        cyc_job = self._job(gt240_config, "cycle")
        out = cyc_job.execute()
        key = cache.put(cyc_job, out.activity, out.cycles)
        assert cache.get(cyc_job, key=key) is not None
        # Same entry offered to an analytical job: backend mismatch.
        ana_job = self._job(gt240_config, "analytical")
        assert cache.get(ana_job, key=key) is None

    def test_legacy_entry_without_backend_field_hits(self, tmp_path,
                                                     gt240_config):
        cache = ResultCache(tmp_path / "cache")
        job = self._job(gt240_config, "cycle")
        out = job.execute()
        key = cache.put(job, out.activity, out.cycles)
        path = cache.path_for(key)
        entry = json.loads(path.read_text())
        del entry["backend"]  # pre-backend-era entry
        path.write_text(json.dumps(entry))
        hit = cache.get(job, key=key)
        assert hit is not None and hit.cached

    def test_cache_hit_survives_reregistration(self, tmp_path,
                                               gt240_config):
        """Keys embed name+version, not instance identity."""
        cache = ResultCache(tmp_path / "cache")
        launch, _, _ = build_vecadd_launch()
        job = SimJob(config=gt240_config, kernel="tiny_vecadd",
                     launch=launch, backend="analytical")
        first, = run_jobs([job], n_jobs=1, cache=cache)
        assert not first.cached
        original = get_backend("analytical")
        try:
            register_backend(AnalyticalBackend())
            second, = run_jobs([job], n_jobs=1, cache=cache)
        finally:
            register_backend(original)
        assert second.cached
        assert second.backend == "analytical"
        assert second.activity.as_dict() == first.activity.as_dict()
        assert second.cycles == first.cycles


class TestJobBackend:
    def test_job_result_reports_backend(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        job = SimJob(config=gt240_config, launch=launch,
                     backend="analytical")
        result, = run_jobs([job], n_jobs=1, cache=None)
        assert result.backend == "analytical"

    def test_unknown_backend_fails_fast(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        job = SimJob(config=gt240_config, launch=launch, backend="nope")
        with pytest.raises(Exception, match="unknown simulation backend"):
            job.execute()

    def test_empty_backend_rejected(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        with pytest.raises(ValueError, match="backend"):
            SimJob(config=gt240_config, launch=launch, backend="")


class TestSerializationRoundTrip:
    def test_simulation_result_keeps_backend(self, gt240_config, launches):
        sim = GPUSimPow(gt240_config)
        result = sim.run(launches["vectorAdd"], backend="analytical")
        assert result.backend == "analytical"
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored.backend == "analytical"
        assert restored.activity.as_dict() == result.activity.as_dict()
        assert restored.power.chip_total_w == result.power.chip_total_w

    def test_from_dict_defaults_to_cycle(self, gt240_config, launches):
        sim = GPUSimPow(gt240_config)
        result = sim.run(launches["vectorAdd"])
        data = result.to_dict()
        del data["backend"]  # pre-backend-era serialization
        assert SimulationResult.from_dict(data).backend == "cycle"

    def test_facade_replay_records_backend(self, gt240_config, launches):
        sim = GPUSimPow(gt240_config)
        fresh = sim.run(launches["vectorAdd"], backend="analytical")
        replay = sim.run(launches["vectorAdd"], activity=fresh.activity,
                         backend="analytical")
        assert replay.backend == "analytical"
        assert replay.power.chip_total_w == fresh.power.chip_total_w

    def test_facade_rejects_unknown_backend(self, gt240_config, launches):
        sim = GPUSimPow(gt240_config)
        with pytest.raises(KeyError, match="unknown simulation backend"):
            sim.run(launches["vectorAdd"], backend="nope")


class TestValidationHarness:
    def test_analytical_comparison_report(self, gt240_config):
        report = compare_backends(gt240_config, ["vectorAdd", "bfs2"],
                                  backend_a="cycle",
                                  backend_b="analytical",
                                  jobs=1, cache=None)
        assert not report.exact_match
        assert report.mean_abs_power_error < 0.35
        data = report.to_dict()
        assert data["backend_a"] == "cycle"
        assert data["backend_b"] == "analytical"
        assert len(data["kernels"]) == 2
        for row in data["kernels"]:
            assert set(row) >= {"kernel", "cycles", "chip_total_w",
                                "power_rel_error", "exact_match"}
