"""Tests for the sharded ``parallel_cycle`` backend.

The epoch-synchronization contract has three load-bearing properties:

* **functional exactness** -- the merged memory image is bit-identical
  to the serial ``cycle`` backend for *every* epoch length (blocks run
  exactly once, at full fidelity, wherever they land);
* **timing convergence** -- cycle error against serial is monotonically
  non-increasing as the epoch shrinks on a contended workload (tighter
  barriers, less unseen cross-shard state);
* **degeneration** -- a single shard IS the serial engine, bit for bit,
  and in-process vs forked-worker shards give identical results.

Plus the integration seams: runner cache keys, job/facade wiring, and
the telemetry invariant that a traced sharded run's windows reconstruct
its aggregate exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import ShardWorkerError, get_backend
from repro.backends.parallel_cycle import ParallelCycleBackend
from repro.runner import SimJob, run_jobs
from repro.runner.cache import job_key
from repro.sim import GPU, gtx580
from repro.telemetry import ActivityTracer, sum_windows
from repro.workloads import build_benchmark

EPOCHS = [50.0, 250.0, 1000.0, None]


@pytest.fixture(scope="module")
def config():
    return gtx580()


@pytest.fixture(scope="module")
def backend():
    return get_backend("parallel_cycle")


def _serial(config, name):
    return GPU(config).run(build_benchmark(name)[0])


@pytest.fixture(scope="module")
def serial_hotspot(config):
    return _serial(config, "hotspot")


class TestFunctionalExactness:
    @pytest.mark.parametrize("epoch", EPOCHS,
                             ids=lambda e: "inf" if e is None else f"{e:g}")
    def test_gmem_bit_identical_for_every_epoch(self, config, backend,
                                                serial_hotspot, epoch):
        out = backend.simulate(config, build_benchmark("hotspot")[0],
                               epoch_cycles=epoch, n_shards=4,
                               processes=False)
        assert np.array_equal(out.gmem, serial_hotspot.gmem)

    def test_gmem_matches_on_low_contention_kernel(self, config, backend):
        ref = _serial(config, "pathfinder")
        out = backend.simulate(config, build_benchmark("pathfinder")[0],
                               epoch_cycles=250.0, n_shards=4,
                               processes=False)
        assert np.array_equal(out.gmem, ref.gmem)

    def test_instruction_counters_exact_at_any_epoch(self, config, backend,
                                                     serial_hotspot):
        # Execution-side counters (instructions, per-core activity) are
        # unaffected by the relaxed uncore timing; only shared-resource
        # timing may drift.
        out = backend.simulate(config, build_benchmark("hotspot")[0],
                               epoch_cycles=None, n_shards=4,
                               processes=False)
        a = serial_hotspot.activity
        assert out.activity.issued_instructions == a.issued_instructions
        assert out.activity.fetches == a.fetches
        assert out.activity.active_cores == a.active_cores
        assert out.activity.active_clusters == a.active_clusters

    def test_l2_dram_counters_exact_at_small_epoch(self, config, backend,
                                                   serial_hotspot):
        # With tight barriers the L2 fill exchange reconstructs the
        # logically-shared cache: miss and DRAM traffic counters match
        # serial exactly on the L2-sharing-heavy workload.
        out = backend.simulate(config, build_benchmark("hotspot")[0],
                               epoch_cycles=50.0, n_shards=4,
                               processes=False)
        a = serial_hotspot.activity
        assert out.activity.l2_misses == a.l2_misses
        assert out.activity.dram_reads == a.dram_reads


class TestTimingConvergence:
    def test_error_monotone_as_epoch_shrinks(self, config, backend,
                                             serial_hotspot):
        """On a contended workload, tighter epochs never increase error."""
        ladder = [None, 1000.0, 500.0, 250.0, 50.0]
        errors = []
        for epoch in ladder:
            out = backend.simulate(config, build_benchmark("hotspot")[0],
                                   epoch_cycles=epoch, n_shards=4,
                                   processes=False)
            errors.append(abs(out.cycles - serial_hotspot.cycles)
                          / serial_hotspot.cycles)
        # Tolerance: 0.05 percentage points -- rung-to-rung differences
        # below that are epoch-grid alignment noise, not relaxation.
        for looser, tighter in zip(errors, errors[1:]):
            assert tighter <= looser + 5e-4, \
                f"error rose when epoch shrank: {errors} (ladder {ladder})"

    def test_default_epoch_within_error_gates(self, config, backend):
        """The shipped default honours the <=2% cycle error target on
        the most contended Table IV workload."""
        ref = _serial(config, "hotspot")
        out = backend.simulate(config, build_benchmark("hotspot")[0],
                               n_shards=4, processes=False)
        assert abs(out.cycles - ref.cycles) / ref.cycles <= 0.02


class TestDegeneration:
    def test_single_shard_bit_identical_to_cycle(self, config, backend,
                                                 serial_hotspot):
        out = backend.simulate(config, build_benchmark("hotspot")[0],
                               n_shards=1)
        assert out.cycles == serial_hotspot.cycles
        assert out.activity.as_dict() == serial_hotspot.activity.as_dict()
        assert np.array_equal(out.gmem, serial_hotspot.gmem)

    def test_single_shard_traced_bit_identical(self, config, backend):
        ref = GPU(config).run(build_benchmark("hotspot")[0],
                              tracer=ActivityTracer(200.0))
        out = backend.simulate(config, build_benchmark("hotspot")[0],
                               n_shards=1, tracer=ActivityTracer(200.0))
        assert len(out.windows) == len(ref.windows)
        for wa, wb in zip(out.windows, ref.windows):
            assert wa.activity.as_dict() == wb.activity.as_dict()

    def test_processes_match_in_process_shards(self, config, backend):
        launch = build_benchmark("heartwall")[0]
        local = backend.simulate(config, build_benchmark("heartwall")[0],
                                 epoch_cycles=250.0, n_shards=4,
                                 processes=False)
        forked = backend.simulate(config, launch, epoch_cycles=250.0,
                                  n_shards=4, processes=True)
        assert forked.cycles == local.cycles
        assert forked.activity.as_dict() == local.activity.as_dict()
        assert np.array_equal(forked.gmem, local.gmem)


class TestTelemetryMerge:
    def test_windows_reconstruct_aggregate_exactly(self, config, backend):
        """Summing a sharded run's windows gives back its aggregate --
        the same invariant serial traced runs guarantee."""
        out = backend.simulate(config, build_benchmark("hotspot")[0],
                               epoch_cycles=250.0, n_shards=4,
                               processes=False,
                               tracer=ActivityTracer(100.0))
        total = sum_windows(out.windows, config)
        assert total.as_dict() == out.activity.as_dict()

    def test_windows_cover_full_runtime(self, config, backend):
        tracer = ActivityTracer(100.0)
        out = backend.simulate(config, build_benchmark("blackscholes")[0],
                               epoch_cycles=250.0, n_shards=4,
                               processes=False, tracer=tracer)
        assert out.windows[-1].end_cycles == out.cycles
        starts = [w.start_cycles for w in out.windows]
        ends = [w.end_cycles for w in out.windows]
        assert starts[0] == 0.0
        assert starts[1:] == ends[:-1]


class TestOptionsAndCache:
    def test_epoch_must_be_positive(self, config, backend):
        with pytest.raises(ValueError, match="epoch_cycles"):
            backend.resolve_options(config, {"epoch_cycles": -5})

    def test_inf_epoch_means_unbounded(self, config, backend):
        epoch, _, _ = backend.resolve_options(
            config, {"epoch_cycles": float("inf")})
        assert epoch is None

    def test_shards_clamped_to_clusters(self, config, backend):
        _, n_shards, _ = backend.resolve_options(config, {"n_shards": 99})
        assert n_shards == config.n_clusters

    def test_cache_key_never_collides_with_cycle(self, config):
        base = SimJob(config=config, kernel="hotspot")
        par = SimJob(config=config, kernel="hotspot",
                     backend="parallel_cycle")
        assert job_key(base) != job_key(par)

    def test_cache_key_tracks_epoch_and_shards(self, config):
        keys = {
            job_key(SimJob(config=config, kernel="hotspot",
                           backend="parallel_cycle",
                           backend_options=opts))
            for opts in (None, {"epoch_cycles": 50.0},
                         {"epoch_cycles": None}, {"n_shards": 2})
        }
        assert len(keys) == 4

    def test_cache_key_ignores_process_policy(self, config):
        a = SimJob(config=config, kernel="hotspot",
                   backend="parallel_cycle",
                   backend_options={"processes": False})
        b = SimJob(config=config, kernel="hotspot",
                   backend="parallel_cycle",
                   backend_options={"processes": True})
        assert job_key(a) == job_key(b)

    def test_runner_round_trip(self, config, tmp_path):
        from repro.runner import ResultCache
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(config=config, kernel="hotspot",
                     backend="parallel_cycle",
                     backend_options={"epoch_cycles": 250.0,
                                      "n_shards": 4,
                                      "processes": False})
        fresh, = run_jobs([job], n_jobs=1, cache=cache)
        again, = run_jobs([job], n_jobs=1, cache=cache)
        assert not fresh.cached and again.cached
        assert again.cycles == fresh.cycles
        assert again.activity.as_dict() == fresh.activity.as_dict()

    def test_worker_error_type_importable(self):
        # The error surface for dead shard workers is part of the API.
        assert issubclass(ShardWorkerError, RuntimeError)


class TestFacade:
    def test_gpusimpow_run_accepts_backend_options(self, config):
        from repro.core.gpusimpow import GPUSimPow
        launch = build_benchmark("pathfinder")[0]
        result = GPUSimPow(config).run(
            launch, backend="parallel_cycle",
            backend_options={"epoch_cycles": 250.0, "n_shards": 2,
                             "processes": False})
        assert result.backend == "parallel_cycle"
        assert result.chip_total_w > 0
