"""Unit tests for front-end structures: warps, scoreboard, instruction
buffer, execution unit pipelines, register file activity, WCU counts."""

import numpy as np
import pytest

from repro.isa import KernelBuilder
from repro.sim.config import gt240, gtx580
from repro.sim.exec_units import ExecutionUnits
from repro.sim.ibuffer import InstructionBuffer
from repro.sim.regfile import RegisterFile
from repro.sim.scoreboard import Scoreboard
from repro.sim.warp import Warp
from repro.sim.wcu import WarpControlUnit


def make_warp(**kw):
    kb = KernelBuilder("t")
    r = kb.regs(4)
    kb.iadd(r[0], r[1], r[2])
    kernel = kb.build()
    specials = {"tid": np.arange(32, dtype=np.float64)}
    return Warp(0, 0, 0, kernel, specials, 32, **kw)


class TestWarp:
    def test_initial_issuable(self):
        w = make_warp()
        assert w.issuable(0.0, has_scoreboard=True, scoreboard_limit=2)

    def test_blocked_until(self):
        w = make_warp()
        w.blocked_until = 10.0
        assert not w.issuable(5.0, True, 2)
        assert w.issuable(10.0, True, 2)

    def test_done_not_issuable(self):
        w = make_warp()
        w.done = True
        assert not w.issuable(0.0, True, 2)

    def test_barrier_not_issuable(self):
        w = make_warp()
        w.at_barrier = True
        assert not w.issuable(0.0, True, 2)

    def test_scoreboard_limit_blocks(self):
        w = make_warp()
        w.reserve(1)
        w.reserve(2)
        assert not w.issuable(0.0, True, 2)
        assert w.issuable(0.0, False, 2)  # barrel mode ignores the limit

    def test_hazard_detection(self):
        w = make_warp()
        w.reserve(3)
        assert w.has_hazard((3,), None)          # RAW
        assert w.has_hazard((), 3)               # WAW
        assert not w.has_hazard((1, 2), 4)

    def test_release_refcounts(self):
        w = make_warp()
        w.reserve(3)
        w.reserve(3)
        w.release(3)
        assert w.has_hazard((3,), None)
        w.release(3)
        assert not w.has_hazard((3,), None)

    def test_partial_initial_mask(self):
        mask = np.zeros(32, dtype=bool)
        mask[:10] = True
        w = make_warp(initial_mask=mask)
        assert w.active_mask.sum() == 10


class TestScoreboard:
    def test_counts_searches_and_writes(self):
        sb = Scoreboard(True, 2)
        w = make_warp()
        sb.reserve(w, 1)
        assert sb.writes == 1
        assert sb.has_hazard(w, (1,), None)
        assert sb.searches == 1
        sb.release(w, 1)
        assert sb.writes == 2

    def test_none_dst_not_counted(self):
        sb = Scoreboard(True, 2)
        w = make_warp()
        sb.reserve(w, None)
        assert sb.writes == 0

    def test_can_reserve_capacity(self):
        sb = Scoreboard(True, 2)
        w = make_warp()
        sb.reserve(w, 1)
        assert sb.can_reserve(w)
        sb.reserve(w, 2)
        assert not sb.can_reserve(w)


class TestInstructionBuffer:
    def test_fill_and_issue(self):
        ib = InstructionBuffer(4, 2)
        ib.fill(0)
        ib.issue(0)
        assert ib.writes == 1 and ib.searches == 1

    def test_capacity_enforced(self):
        ib = InstructionBuffer(4, 2)
        ib.fill(0)
        ib.fill(0)
        assert not ib.can_fetch(0)
        with pytest.raises(RuntimeError):
            ib.fill(0)

    def test_issue_from_empty_raises(self):
        ib = InstructionBuffer(4, 2)
        with pytest.raises(RuntimeError):
            ib.issue(0)

    def test_flush(self):
        ib = InstructionBuffer(4, 2)
        ib.fill(1)
        ib.fill(1)
        ib.flush(1)
        assert ib.can_fetch(1)
        assert ib.flushes == 2

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            InstructionBuffer(4, 0)


class TestExecutionUnits:
    def test_gt240_occupancies(self):
        eu = ExecutionUnits(gt240())
        assert eu.groups["int"].occupancy == 4   # 32 threads / 8 lanes
        assert eu.groups["fp"].occupancy == 4
        assert eu.groups["sfu"].occupancy == 16  # 32 / 2 SFUs

    def test_gtx580_single_cycle_fp(self):
        eu = ExecutionUnits(gtx580())
        assert eu.groups["fp"].occupancy == 1

    def test_issue_blocks_group(self):
        eu = ExecutionUnits(gt240())
        eu.issue("fp", 0.0, 32)
        assert not eu.can_accept("fp", 1.0)
        assert eu.can_accept("fp", 4.0)
        assert eu.can_accept("int", 1.0)   # other groups independent

    def test_issue_while_busy_raises(self):
        eu = ExecutionUnits(gt240())
        eu.issue("fp", 0.0, 32)
        with pytest.raises(RuntimeError):
            eu.issue("fp", 1.0, 32)

    def test_completion_after_latency(self):
        cfg = gt240()
        eu = ExecutionUnits(cfg)
        done = eu.issue("fp", 0.0, 32)
        assert done == cfg.fu_cycles_per_warp + cfg.alu_latency_cycles

    def test_lane_op_accounting(self):
        eu = ExecutionUnits(gt240())
        eu.issue("int", 0.0, 17)
        assert eu.lane_ops("int") == 17

    def test_next_free(self):
        eu = ExecutionUnits(gt240())
        eu.issue("fp", 0.0, 32)
        eu.issue("int", 0.0, 32)
        eu.issue("sfu", 0.0, 32)
        assert eu.next_free(0.0) == 4.0


class TestRegisterFile:
    def test_full_warp_operand_banks(self):
        rf = RegisterFile(gt240())
        cycles = rf.read_operands(2, 32)
        assert rf.operand_reads == 2
        assert rf.bank_accesses == 16  # 2 operands x 8 bank beats
        assert cycles >= 1

    def test_narrow_access_fewer_banks(self):
        rf = RegisterFile(gt240())
        rf.read_operands(1, 4)
        assert rf.bank_accesses == 1

    def test_write_result(self):
        rf = RegisterFile(gt240())
        rf.write_result(32)
        assert rf.operand_writes == 1
        assert rf.bank_accesses == 8

    def test_zero_operands_free(self):
        rf = RegisterFile(gt240())
        assert rf.read_operands(0, 32) == 0
        assert rf.bank_accesses == 0

    def test_collector_dispatch(self):
        rf = RegisterFile(gt240())
        rf.dispatch()
        assert rf.collector_reads == 1


class TestWCU:
    def test_account_issue_touches_structures(self):
        wcu = WarpControlUnit(gt240())
        wcu.account_issue(0, pc=0)
        assert wcu.fetches == 1
        assert wcu.decodes == 1
        assert wcu.wst_reads == 2
        assert wcu.wst_writes == 1
        assert wcu.ibuffer.writes == 1
        assert wcu.ibuffer.searches == 1
        assert wcu.icache.reads == 1

    def test_icache_locality(self):
        wcu = WarpControlUnit(gt240())
        for pc in range(8):
            wcu.account_issue(0, pc)
        # 8 instructions x 8 bytes = one 64-byte line: one cold miss.
        assert wcu.icache.misses == 1

    def test_schedule_cycle_counter(self):
        wcu = WarpControlUnit(gt240())
        wcu.account_schedule_cycle()
        wcu.account_schedule_cycle()
        assert wcu.fetch_scheduler_ops == 2
        assert wcu.issue_scheduler_ops == 2
