"""Unit tests for the kernel-builder DSL and Kernel container."""

import pytest

from repro.isa import Imm, KernelBuilder, Reg, Sreg
from repro.isa.kernel import Kernel


class TestRegisterAllocation:
    def test_fresh_registers(self):
        kb = KernelBuilder("k")
        r0, r1 = kb.reg(), kb.reg()
        assert (r0.index, r1.index) == (0, 1)

    def test_regs_bulk(self):
        kb = KernelBuilder("k")
        rs = kb.regs(5)
        assert [r.index for r in rs] == [0, 1, 2, 3, 4]

    def test_pred_allocation(self):
        kb = KernelBuilder("k")
        assert kb.pred().index == 0
        assert kb.pred().index == 1

    def test_n_regs_recorded(self):
        kb = KernelBuilder("k")
        a, b = kb.regs(2)
        kb.iadd(a, b, 1)
        assert kb.build().n_regs == 2


class TestAssembly:
    def test_immediate_coercion(self):
        kb = KernelBuilder("k")
        r = kb.reg()
        kb.iadd(r, r, 7)
        kernel = kb.build()
        assert isinstance(kernel.instructions[0].srcs[1], Imm)
        assert kernel.instructions[0].srcs[1].value == 7.0

    def test_auto_exit_appended(self):
        kb = KernelBuilder("k")
        r = kb.reg()
        kb.mov(r, 1)
        kernel = kb.build()
        assert kernel.instructions[-1].op == "EXIT"

    def test_no_double_exit(self):
        kb = KernelBuilder("k")
        kb.exit()
        kernel = kb.build()
        assert sum(1 for i in kernel.instructions if i.op == "EXIT") == 1

    def test_label_resolution(self):
        kb = KernelBuilder("k")
        r = kb.reg()
        p = kb.pred()
        kb.label("top")
        kb.iadd(r, r, 1)
        kb.setp("lt", p, r, 10)
        kb.bra("top", pred=p)
        kernel = kb.build()
        bra = kernel.instructions[2]
        assert bra.op == "BRA" and bra.target == 0

    def test_forward_label(self):
        kb = KernelBuilder("k")
        kb.jmp("end")
        kb.nop()
        kb.label("end")
        kernel = kb.build()
        assert kernel.instructions[0].target == 2

    def test_undefined_label_raises(self):
        kb = KernelBuilder("k")
        kb.jmp("nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            kb.build()

    def test_duplicate_label_raises(self):
        kb = KernelBuilder("k")
        kb.label("x")
        with pytest.raises(ValueError, match="defined twice"):
            kb.label("x")

    def test_smem_words_carried(self):
        kb = KernelBuilder("k", smem_words=48)
        assert kb.build().smem_words == 48

    def test_mem_offsets(self):
        kb = KernelBuilder("k")
        r, a = kb.regs(2)
        kb.ldg(r, a, offset=1024)
        assert kb.build().instructions[0].offset == 1024

    def test_guard_threading(self):
        kb = KernelBuilder("k")
        r = kb.reg()
        p = kb.pred()
        kb.mov(r, 1, guard=(p, False))
        inst = kb.build().instructions[0]
        assert inst.guard == (p, False)

    def test_selp_records_predicate(self):
        kb = KernelBuilder("k")
        d, a, b = kb.regs(3)
        p = kb.pred()
        kb.selp(d, a, b, p)
        inst = kb.build().instructions[0]
        assert inst.sel_pred is p

    def test_kernel_len(self):
        kb = KernelBuilder("k")
        kb.nop()
        kernel = kb.build()
        assert len(kernel) == 2  # NOP + auto EXIT
        assert kernel.static_size == 2


class TestReconvergenceAnnotation:
    def test_if_else_reconverges_at_join(self):
        kb = KernelBuilder("k")
        r = kb.reg()
        p = kb.pred()
        kb.setp("lt", p, r, 0)       # 0
        kb.bra("else_", pred=p)      # 1
        kb.iadd(r, r, 1)             # 2
        kb.jmp("join")               # 3
        kb.label("else_")
        kb.iadd(r, r, 2)             # 4
        kb.label("join")
        kb.exit()                    # 5
        kernel = kb.build()
        assert kernel.instructions[1].reconv_pc == 5

    def test_loop_branch_reconverges_at_fallthrough(self):
        kb = KernelBuilder("k")
        r = kb.reg()
        p = kb.pred()
        kb.label("loop")
        kb.iadd(r, r, 1)             # 0
        kb.setp("lt", p, r, 4)       # 1
        kb.bra("loop", pred=p)       # 2
        kb.exit()                    # 3
        kernel = kb.build()
        assert kernel.instructions[2].reconv_pc == 3
