"""Integration tests for the testbed + measurement tool chain."""

import numpy as np
import pytest

from repro.hw.measure import MeasurementTool
from repro.hw.testbed import Testbed
from repro.hw.virtual_gpu import VirtualGPU
from repro.sim.activity import ActivityReport
from repro.sim.config import gt240, gtx580


def activity(runtime_s=2e-4, **counts):
    act = ActivityReport()
    act.runtime_s = runtime_s
    for k, v in counts.items():
        setattr(act, k, v)
    return act


def busy_activity():
    return activity(fp_ops=5e5, int_ops=1e5, issued_instructions=5e4,
                    active_cores=12, active_clusters=4, blocks_launched=12,
                    mem_transactions=1e4, dram_reads=2e4)


class TestSession:
    def test_windows_cover_kernels(self):
        bed = Testbed(VirtualGPU(gt240()), seed=1)
        cap = bed.run_session([("k1", busy_activity(), 100),
                               ("k2", busy_activity(), 100)])
        assert [w.name for w in cap.windows] == ["k1", "k2"]
        assert cap.windows[0].end_s <= cap.windows[1].start_s
        assert cap.duration_s > cap.windows[1].end_s

    def test_short_kernels_repeated(self):
        bed = Testbed(VirtualGPU(gt240()), seed=1)
        cap = bed.run_session([("quick", activity(runtime_s=1e-6), 100)])
        # Extended well past the requested 100 to reach a measurable
        # window (paper: sub-500us kernels repeated 100x; our DAQ needs
        # ~20 ms of samples).
        assert cap.windows[0].repeats >= 100
        assert cap.windows[0].duration_s >= 0.019

    def test_rail_channels_match_card(self):
        for cfg, expected in ((gt240(), 2), (gtx580(), 4)):
            bed = Testbed(VirtualGPU(cfg), seed=1)
            cap = bed.run_session([("k", busy_activity(), 10)])
            assert len(cap.rails) == expected

    def test_non_repeatable_window_diluted(self):
        vg = VirtualGPU(gt240())
        bed = Testbed(vg, seed=1)
        cap_ok = bed.run_session([("k", busy_activity(), 100, True)])
        bed2 = Testbed(vg, seed=1)
        cap_art = bed2.run_session([("k", busy_activity(), 1, False)])
        p_ok = MeasurementTool(cap_ok).kernel_power("k")
        p_art = MeasurementTool(cap_art).kernel_power("k")
        assert p_art < p_ok  # artifact biases the measurement low


class TestMeasurementTool:
    def test_measured_power_close_to_truth(self):
        vg = VirtualGPU(gt240())
        truth = vg.kernel_power_w(busy_activity())
        bed = Testbed(vg, seed=3)
        cap = bed.run_session([("k", busy_activity(), 100)])
        measured = MeasurementTool(cap).kernel_power("k")
        # Paper: the chain is accurate within ~3.2% overall.
        assert measured == pytest.approx(truth, rel=0.035)

    def test_measurement_error_within_spec_many_channels(self):
        errors = []
        for seed in range(12):
            vg = VirtualGPU(gt240())
            truth = vg.kernel_power_w(busy_activity())
            bed = Testbed(vg, seed=seed)
            cap = bed.run_session([("k", busy_activity(), 100)])
            measured = MeasurementTool(cap).kernel_power("k")
            errors.append(abs(measured - truth) / truth)
        assert max(errors) < 0.032   # the paper's +/-3.2% system bound

    def test_idle_power_measured(self):
        vg = VirtualGPU(gt240())
        bed = Testbed(vg, seed=3)
        cap = bed.run_session([("a", busy_activity(), 100),
                               ("b", busy_activity(), 100)])
        idle = MeasurementTool(cap).idle_power()
        assert idle == pytest.approx(vg.active_idle_w, rel=0.05)

    def test_energy_consistent_with_power(self):
        bed = Testbed(VirtualGPU(gt240()), seed=3)
        cap = bed.run_session([("k", busy_activity(), 100)])
        m = MeasurementTool(cap).kernel_measurements()[0]
        assert m.energy_j == pytest.approx(m.avg_power_w * m.duration_s)
        assert m.energy_per_run_j == pytest.approx(m.energy_j / m.repeats)

    def test_unknown_kernel_raises(self):
        bed = Testbed(VirtualGPU(gt240()), seed=3)
        cap = bed.run_session([("k", busy_activity(), 100)])
        with pytest.raises(KeyError):
            MeasurementTool(cap).kernel_power("ghost")

    def test_waveform_has_kernel_plateau(self):
        vg = VirtualGPU(gt240())
        bed = Testbed(vg, seed=3)
        cap = bed.run_session([("k", busy_activity(), 100)])
        tool = MeasurementTool(cap)
        w = cap.windows[0]
        inside = tool.window_average(w.start_s, w.end_s)
        before = tool.window_average(0.0, w.start_s - 1e-3)
        assert inside > before
