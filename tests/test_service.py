"""Integration tests for the power-estimation service.

A real :class:`~repro.service.ServiceDaemon` runs on its own event
loop in a background thread; tests talk to it over actual HTTP with
the synchronous :class:`~repro.service.ServiceClient` -- the same
stack ``gpusimpow submit`` and the CI job use.  No asyncio test
framework is needed: the daemon side is genuinely async, the test
side is plain blocking calls.
"""

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import SimRequest
from repro.isa import Dim3, KernelBuilder, KernelLaunch, Reg, Sreg
from repro.service import (Journal, PowerService, ServiceClient,
                           ServiceDaemon, ServiceError)
from repro.sim import gt240
from tests.conftest import build_vecadd_launch


class DaemonHarness:
    """One daemon on a background thread, reachable over HTTP."""

    def __init__(self, **service_kwargs):
        service_kwargs.setdefault("cache", None)
        self.service_kwargs = service_kwargs
        self.loop = None
        self.thread = None
        self.daemon = None
        self.client = None

    def start(self):
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.service = PowerService(**self.service_kwargs)
            self.daemon = ServiceDaemon(self.service, port=0)
            self.loop.run_until_complete(self.daemon.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30), "daemon failed to start"
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.daemon.port}", tenant="test")
        return self

    def stop(self):
        if self.loop is None or self.loop.is_closed():
            return
        future = asyncio.run_coroutine_threadsafe(self.daemon.stop(),
                                                  self.loop)
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


@pytest.fixture()
def daemon_factory():
    harnesses = []

    def make(**service_kwargs):
        harness = DaemonHarness(**service_kwargs).start()
        harnesses.append(harness)
        return harness

    yield make
    for harness in harnesses:
        harness.stop()


def tiny_request(**overrides):
    launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
    fields = dict(config=gt240(), launch=launch, kernel="tiny_vecadd")
    fields.update(overrides)
    return SimRequest(**fields)


def broken_request():
    """A kernel only the verifier rejects (reads unallocated r7)."""
    kb = KernelBuilder("broken")
    r = kb.reg()
    kb.mov(r, Reg(7))
    kb.exit()
    launch = KernelLaunch(kernel=kb.build(verify=False), grid=Dim3(1),
                          block=Dim3(32), gmem_words=64)
    return SimRequest(config=gt240(), launch=launch, kernel="broken")


class TestEndpoints:
    def test_healthz(self, daemon_factory):
        harness = daemon_factory()
        health = harness.client.healthz()
        assert health["ok"] is True
        assert health["paused"] is False
        import repro
        assert health["version"] == repro.__version__

    def test_status_shape(self, daemon_factory):
        harness = daemon_factory()
        status = harness.client.status()
        assert status["queued_tasks"] == 0
        assert status["running_tasks"] == 0
        assert status["stats"]["submissions"] == 0
        assert status["cache"] is None

    def test_unknown_route_404(self, daemon_factory):
        harness = daemon_factory()
        with pytest.raises(ServiceError) as err:
            harness.client._call("GET", "/v1/nope")
        assert err.value.status == 404

    def test_unknown_submission_404(self, daemon_factory):
        harness = daemon_factory()
        with pytest.raises(ServiceError) as err:
            harness.client.result("s999999")
        assert err.value.status == 404

    def test_malformed_body_400(self, daemon_factory):
        harness = daemon_factory()
        with pytest.raises(ServiceError) as err:
            harness.client._call("POST", "/v1/submit",
                                 {"request": {"kernel": "x"}})
        assert err.value.status == 400

    def test_pause_resume_roundtrip(self, daemon_factory):
        harness = daemon_factory()
        assert harness.client.pause()["paused"] is True
        assert harness.client.healthz()["paused"] is True
        assert harness.client.resume()["paused"] is False


class TestSubmitFlow:
    def test_submit_wait_returns_result(self, daemon_factory):
        harness = daemon_factory()
        response = harness.client.submit(tiny_request(), wait=True)
        assert response["state"] == "done"
        assert response["cached"] is False
        summary = response["result"]["summary"]
        assert summary["chip_total_w"] > 0
        assert summary["runtime_s"] > 0

    def test_cache_hit_on_resubmit(self, daemon_factory, tmp_path):
        harness = daemon_factory(cache=str(tmp_path / "cache"))
        first = harness.client.submit(tiny_request(), wait=True)
        second = harness.client.submit(tiny_request(), wait=True)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"]["summary"] == \
            first["result"]["summary"]
        stats = harness.client.status()["stats"]
        assert stats["cache_hits"] == 1
        assert stats["simulations"] == 1

    def test_submit_async_then_poll(self, daemon_factory):
        harness = daemon_factory()
        accepted = harness.client.submit(tiny_request())
        assert "submission" in accepted
        result = harness.client.wait(accepted["submission"],
                                     timeout_s=120)
        assert result["state"] == "done"
        assert result["result"]["summary"]["chip_total_w"] > 0

    def test_result_409_until_done(self, daemon_factory):
        harness = daemon_factory()
        harness.client.pause()
        accepted = harness.client.submit(tiny_request())
        with pytest.raises(ServiceError) as err:
            harness.client.result(accepted["submission"])
        assert err.value.status == 409


class TestAdmissionControl:
    def test_lint_rejects_broken_kernel(self, daemon_factory):
        harness = daemon_factory()
        with pytest.raises(ServiceError) as err:
            harness.client.submit(broken_request(), wait=True)
        assert err.value.status == 422
        diags = err.value.payload["diagnostics"]
        assert any(d["rule"] == "V008" for d in diags)
        assert harness.client.status()["stats"]["lint_rejections"] == 1
        assert harness.client.status()["stats"]["simulations"] == 0

    def test_lint_off_admits_broken_kernel(self, daemon_factory):
        harness = daemon_factory(lint=False)
        harness.client.pause()
        accepted = harness.client.submit(broken_request())
        assert "submission" in accepted

    def test_quota_429(self, daemon_factory):
        harness = daemon_factory(tenant_quota=2)
        harness.client.pause()
        harness.client.submit(tiny_request())
        harness.client.submit(tiny_request(trace_interval=64.0))
        with pytest.raises(ServiceError) as err:
            harness.client.submit(tiny_request(trace_interval=32.0))
        assert err.value.status == 429
        assert harness.client.status()["stats"]["quota_rejections"] == 1

    def test_quota_is_per_tenant(self, daemon_factory):
        harness = daemon_factory(tenant_quota=1)
        harness.client.pause()
        harness.client.submit(tiny_request())
        other = ServiceClient(harness.client.base_url, tenant="other")
        accepted = other.submit(tiny_request(trace_interval=64.0))
        assert "submission" in accepted

    def test_queue_limit_503(self, daemon_factory):
        harness = daemon_factory(queue_limit=1, tenant_quota=8)
        harness.client.pause()
        harness.client.submit(tiny_request())
        with pytest.raises(ServiceError) as err:
            harness.client.submit(tiny_request(trace_interval=64.0))
        assert err.value.status == 503
        assert harness.client.status()["stats"]["queue_rejections"] == 1


class TestDedup:
    def test_concurrent_identical_submits_one_simulation(
            self, daemon_factory):
        """Eight clients ask for the same digest at once; exactly one
        simulation runs and every client gets bit-identical results."""
        harness = daemon_factory(tenant_quota=16)
        harness.client.pause()
        request = tiny_request()

        def submit(i):
            client = ServiceClient(harness.client.base_url,
                                   tenant=f"t{i}")
            return client.submit(request, wait=True,
                                 wait_timeout_s=120)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(submit, i) for i in range(8)]
            # Wait until all eight are queued server-side, then open
            # the gate: the batch is admitted as one in-flight task.
            deadline_stats = None
            for _ in range(200):
                deadline_stats = harness.client.status()
                if deadline_stats["stats"]["submissions"] >= 8:
                    break
                import time
                time.sleep(0.05)
            assert deadline_stats["stats"]["submissions"] >= 8
            harness.client.resume()
            responses = [f.result(timeout=120) for f in futures]

        stats = harness.client.status()["stats"]
        assert stats["simulations"] == 1
        assert stats["dedup_hits"] == 7
        # Bit-identical fan-out: every response carries the same
        # serialized result.
        blobs = {json.dumps(r["result"], sort_keys=True)
                 for r in responses}
        assert len(blobs) == 1
        assert sum(r["deduped"] for r in responses) == 7


class TestStreaming:
    def test_stream_windows_then_result(self, daemon_factory):
        harness = daemon_factory()
        harness.client.pause()
        accepted = harness.client.submit(
            tiny_request(trace_interval=64.0))
        sub_id = accepted["submission"]
        harness.client.resume()
        events = list(harness.client.stream(sub_id))
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "result"
        assert "window" in kinds
        windows = [e for e in events if e["event"] == "window"]
        assert all(w["data"]["end_cycles"] > 0 for w in windows)
        result = events[-1]["data"]
        assert result["summary"]["chip_total_w"] > 0


class TestJournalRecovery:
    def test_replay_after_restart(self, daemon_factory, tmp_path):
        """A submission admitted but unanswered when the daemon dies
        is re-admitted -- and answered -- by the next daemon."""
        journal = str(tmp_path / "journal.jsonl")
        cache = str(tmp_path / "cache")
        first = daemon_factory(journal_path=journal, cache=cache)
        first.client.pause()  # admitted, journaled, never dispatched
        accepted = first.client.submit(tiny_request())
        sub_id = accepted["submission"]
        first.stop()

        assert len(Journal.pending(journal)) == 1
        second = daemon_factory(journal_path=journal, cache=cache)
        stats = second.client.status()["stats"]
        assert stats["replayed"] == 1
        result = second.client.wait(sub_id, timeout_s=120)
        assert result["state"] == "done"
        assert result["result"]["summary"]["chip_total_w"] > 0
        # The answer closes the journal loop: nothing pending now.
        assert Journal.pending(journal) == []

    def test_replayed_ids_never_collide(self, daemon_factory,
                                        tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        first = daemon_factory(journal_path=journal)
        first.client.pause()
        sub_id = first.client.submit(tiny_request())["submission"]
        first.stop()

        second = daemon_factory(journal_path=journal)
        fresh = second.client.submit(tiny_request(trace_interval=64.0))
        assert fresh["submission"] != sub_id

    def test_done_submissions_not_replayed(self, daemon_factory,
                                           tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        cache = str(tmp_path / "cache")
        first = daemon_factory(journal_path=journal, cache=cache)
        first.client.submit(tiny_request(), wait=True)
        first.stop()

        second = daemon_factory(journal_path=journal, cache=cache)
        assert second.client.status()["stats"]["replayed"] == 0


class TestJournalFormat:
    def test_pending_skips_torn_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.record_submit("s000001", "t", "d1", 0, {"k": 1})
        journal.record_submit("s000002", "t", "d2", 0, {"k": 2})
        journal.record_done("s000001", "done")
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "submit", "sub": "s0000')  # torn
        pending = Journal.pending(path)
        assert [p["sub"] for p in pending] == ["s000002"]

    def test_highest_serial(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.record_submit("s000007", "t", "d", 0, {})
        journal.record_submit("s000003", "t", "d", 0, {})
        journal.close()
        assert Journal.highest_serial(path) == 7
        assert Journal.highest_serial(tmp_path / "missing.jsonl") == 0


class TestUptimeMonotonic:
    def test_uptime_survives_wall_clock_step(self, monkeypatch):
        # An NTP step (or suspend) moves time.time() arbitrarily;
        # uptime must come from the monotonic clock and never jump
        # negative.
        from repro.service import core as service_core
        service = PowerService(cache=None)
        monkeypatch.setattr(service_core.time, "time",
                            lambda: service.started_at - 3600.0)
        status = service.status()
        assert status["uptime_s"] >= 0.0
        assert status["uptime_s"] < 60.0
        assert status["started_at"] == service.started_at

    def test_uptime_tracks_monotonic_clock(self, monkeypatch):
        from repro.service import core as service_core
        service = PowerService(cache=None)
        base = service._started_monotonic
        monkeypatch.setattr(service_core.time, "monotonic",
                            lambda: base + 42.0)
        assert service.status()["uptime_s"] == pytest.approx(42.0)


class TestGracefulShutdown:
    def _start_serve(self, journal_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro
        env = os.environ.copy()
        src_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--no-cache", "--journal", str(journal_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env)
        port = None
        for line in proc.stdout:
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
                break
        assert port, "daemon never reported its port"
        return proc, port

    def test_sigterm_mid_queue_loses_no_journal_entries(self, tmp_path):
        # Pause dispatch so submissions stay queued, then SIGTERM: the
        # daemon must exit cleanly and every admitted submission must
        # be durable (and replayable) in the journal -- no torn lines.
        import signal

        journal_path = tmp_path / "journal.jsonl"
        proc, port = self._start_serve(journal_path)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}",
                                   tenant="test")
            client.pause()
            subs = [client.submit(tiny_request(), wait=False)
                    for _ in range(3)]
            assert all(p["state"] == "queued" for p in subs)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        lines = [line for line in
                 journal_path.read_text().splitlines() if line]
        records = [json.loads(line) for line in lines]  # none torn
        submitted = [r for r in records if r["event"] == "submit"]
        assert len(submitted) == 3
        pending = Journal.pending(journal_path)
        assert [p["sub"] for p in pending] == \
            [p["submission"] for p in subs]

    def test_journal_append_after_close_is_dropped(self, tmp_path):
        # A completion racing shutdown must not raise into the
        # finishing task nor corrupt the sealed log.
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.record_submit("s000001", "t", "d1", 0, {})
        journal.close()
        journal.record_done("s000001", "done")  # no-op, no raise
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["submit"]

    def test_close_ends_open_streams(self, daemon_factory):
        # close() pushes the None sentinel to live subscribers, so an
        # open SSE stream terminates instead of hanging.
        harness = daemon_factory(max_parallel=1)
        harness.service.pause()
        payload = harness.client.submit(
            tiny_request(trace_interval=500.0), wait=False)
        sub_id = payload["submission"]

        def drain():
            return list(harness.client.stream(sub_id))

        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(drain)
            import time as _time
            _time.sleep(0.3)  # let the stream attach
            harness.stop()
            events = future.result(timeout=30)
        assert all(e["event"] != "result" for e in events)


def uninit_request(**overrides):
    """A kernel whose loads read never-written shared words (S001).

    Static analysis flags it only with warnings (U001), so it passes
    admission lint and reaches the simulator.
    """
    kb = KernelBuilder("svc_uninit", smem_words=16)
    t = kb.reg()
    v = kb.reg()
    kb.mov(t, Sreg("tid"))
    kb.lds(v, t)
    kb.stg(v, t)
    kb.exit()
    launch = KernelLaunch(kernel=kb.build(), grid=Dim3(1),
                          block=Dim3(16), gmem_words=64)
    fields = dict(config=gt240(), launch=launch, kernel="svc_uninit",
                  sanitize=True)
    fields.update(overrides)
    return SimRequest(**fields)


class TestSanitizedSubmissions:
    def test_findings_ride_the_result_payload(self, daemon_factory):
        harness = daemon_factory()
        response = harness.client.submit(uninit_request(), wait=True)
        sanitizer = response["result"]["sanitizer"]
        assert sanitizer["clean"] is False
        assert any(d["rule"] == "S001"
                   for d in sanitizer["diagnostics"])

    def test_clean_kernel_reports_clean(self, daemon_factory):
        harness = daemon_factory()
        response = harness.client.submit(tiny_request(sanitize=True),
                                         wait=True)
        sanitizer = response["result"]["sanitizer"]
        assert sanitizer == {"clean": True, "diagnostics": []}

    def test_unsanitized_payload_has_no_sanitizer_block(
            self, daemon_factory):
        harness = daemon_factory()
        response = harness.client.submit(tiny_request(), wait=True)
        assert "sanitizer" not in response["result"]

    def test_sanitized_never_answers_from_cache(self, daemon_factory,
                                                tmp_path):
        harness = daemon_factory(cache=str(tmp_path))
        warm = harness.client.submit(tiny_request(), wait=True)
        assert warm["cached"] is False
        hit = harness.client.submit(tiny_request(), wait=True)
        assert hit["cached"] is True
        sanitized = harness.client.submit(tiny_request(sanitize=True),
                                          wait=True)
        assert sanitized["cached"] is False
        assert sanitized["result"]["sanitizer"]["clean"] is True

    def test_unsupported_backend_rejected_400(self, daemon_factory):
        harness = daemon_factory()
        with pytest.raises(ServiceError) as err:
            harness.client.submit(
                tiny_request(backend="analytical", sanitize=True))
        assert err.value.status == 400

    def test_sanitize_does_not_dedup_onto_plain_task(
            self, daemon_factory):
        # Same digest, different observer flag: the sanitized
        # submission must get its own task (and its own payload).
        harness = daemon_factory(max_parallel=1)
        harness.client.pause()
        plain = harness.client.submit(tiny_request(), wait=False)
        sanitized = harness.client.submit(tiny_request(sanitize=True),
                                          wait=False)
        assert sanitized["deduped"] is False
        harness.client.resume()
        done = harness.client.wait(sanitized["submission"])
        assert done["result"]["sanitizer"]["clean"] is True
        plain_done = harness.client.wait(plain["submission"])
        assert "sanitizer" not in plain_done["result"]
