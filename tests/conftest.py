"""Shared fixtures for the test suite.

Heavy objects (workload launches, full-suite simulations) are cached at
session scope so the many tests that inspect them don't re-simulate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import Dim3, KernelBuilder, KernelLaunch, Sreg
from repro.sim import GPU, gt240, gtx580
from repro.workloads import all_kernel_launches


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep runner cache writes (e.g. from CLI tests) out of ~/.cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "gpusimpow_cache"))
    # Same hermeticity for surrogate calibration tables: tests see only
    # their own tmp store plus the tables packaged with the code.
    monkeypatch.setenv("REPRO_CALIB_DIR", str(tmp_path / "gpusimpow_calib"))


@pytest.fixture(scope="session")
def gt240_config():
    return gt240()


@pytest.fixture(scope="session")
def gtx580_config():
    return gtx580()


@pytest.fixture(scope="session")
def launches():
    """The 19 evaluation kernel launches, built once."""
    return all_kernel_launches()


def build_vecadd_launch(n=256, block=64, grid=None):
    """A tiny vector-add launch for fast integration tests."""
    kb = KernelBuilder("tiny_vecadd")
    i, a, b, c = kb.regs(4)
    kb.mov(i, Sreg("gtid"))
    kb.ldg(a, i, offset=0)
    kb.ldg(b, i, offset=n)
    kb.fadd(c, a, b)
    kb.stg(c, i, offset=2 * n)
    kb.exit()
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    return KernelLaunch(
        kernel=kb.build(),
        grid=Dim3(grid or max(1, n // block)),
        block=Dim3(block),
        globals_init={0: x, n: y},
        gmem_words=3 * n,
    ), x, y


@pytest.fixture()
def vecadd_launch():
    return build_vecadd_launch()


@pytest.fixture(scope="session")
def blackscholes_result_gt240(gt240_config, launches):
    """BlackScholes simulated once on the GT240 (many tests inspect it)."""
    from repro.core import GPUSimPow
    return GPUSimPow(gt240_config).run(launches["BlackScholes"])


@pytest.fixture(scope="session")
def blackscholes_activity(blackscholes_result_gt240):
    return blackscholes_result_gt240.activity
