"""Unit tests for the virtual-hardware card model."""

import pytest

from repro.hw.virtual_gpu import (CARDS, UnsupportedByDriver, VirtualGPU)
from repro.sim.activity import ActivityReport
from repro.sim.config import gt240, gtx580


def activity(runtime_s=1e-3, **counts):
    act = ActivityReport()
    act.runtime_s = runtime_s
    for k, v in counts.items():
        setattr(act, k, v)
    return act


class TestCardStates:
    def test_gt240_idle_states_match_paper(self):
        """Section V-A: ~15 W gated, ~19.5 W around kernels, ~90% static."""
        v = VirtualGPU(gt240())
        assert v.gated_idle_w == pytest.approx(15.0)
        assert v.active_idle_w == pytest.approx(19.5)
        assert CARDS["GT240"].static_w / v.active_idle_w == pytest.approx(
            0.90, abs=0.01)

    def test_gtx580_90w_prekernel_state(self):
        """Paper: 'The GTX580 is using 90 W in the same state'."""
        assert VirtualGPU(gtx580()).active_idle_w == pytest.approx(90.0)

    def test_unknown_card_rejected(self):
        with pytest.raises(KeyError):
            VirtualGPU(gt240().scaled(name="GT9800"))


class TestKernelPower:
    def test_idle_activity_gives_active_idle(self):
        v = VirtualGPU(gt240())
        assert v.kernel_power_w(ActivityReport()) == v.active_idle_w

    def test_power_grows_with_work(self):
        v = VirtualGPU(gt240())
        light = v.kernel_power_w(activity(fp_ops=1e5, active_cores=1,
                                          active_clusters=1,
                                          blocks_launched=1))
        heavy = v.kernel_power_w(activity(fp_ops=1e8, active_cores=12,
                                          active_clusters=4,
                                          blocks_launched=32))
        assert heavy > light > v.active_idle_w

    def test_scheduler_power_on_first_block(self):
        v = VirtualGPU(gt240())
        without = v.kernel_power_w(activity())
        with_blocks = v.kernel_power_w(activity(blocks_launched=1,
                                                active_clusters=1,
                                                active_cores=1))
        step = with_blocks - without
        # scheduler + 1 cluster + 1 core, with VRM loss on top
        expected = (3.34 + 0.692 + CARDS["GT240"].core_base_w) * 1.045
        assert step == pytest.approx(expected, rel=0.01)

    def test_cluster_staircase_steps(self):
        v = VirtualGPU(gt240())
        p = [v.kernel_power_w(activity(blocks_launched=b,
                                       active_clusters=min(b, 4),
                                       active_cores=b))
             for b in range(1, 6)]
        cluster_steps = [p[1] - p[0], p[2] - p[1], p[3] - p[2]]
        core_step = p[4] - p[3]
        for s in cluster_steps:
            assert s - core_step == pytest.approx(0.692 * 1.045, rel=0.01)


class TestClockScaling:
    def test_dynamic_scales_with_clock(self):
        act = activity(fp_ops=1e8)
        full = VirtualGPU(gt240(), clock_scale=1.0)
        slow = VirtualGPU(gt240(), clock_scale=0.8)
        dyn_full = full.kernel_power_w(act) - full.active_idle_w
        dyn_slow = slow.kernel_power_w(act) - slow.active_idle_w
        assert dyn_slow == pytest.approx(0.8 * dyn_full, rel=0.01)

    def test_extrapolation_premise(self):
        """Two frequency points extrapolate to the static power."""
        act = activity(fp_ops=1e8, active_cores=12, active_clusters=4,
                       blocks_launched=12)
        p1 = VirtualGPU(gt240(), 1.0).kernel_power_w(act)
        p08 = VirtualGPU(gt240(), 0.8).kernel_power_w(act)
        intercept = p1 - (p1 - p08) / 0.2
        assert intercept == pytest.approx(CARDS["GT240"].static_w, rel=0.01)

    def test_gtx580_driver_refuses(self):
        with pytest.raises(UnsupportedByDriver):
            VirtualGPU(gtx580(), clock_scale=0.8)

    def test_insane_scale_rejected(self):
        with pytest.raises(ValueError):
            VirtualGPU(gt240(), clock_scale=0.05)


class TestRails:
    def test_gt240_slot_only(self):
        rails = VirtualGPU(gt240()).rail_split()
        assert [name for name, _, _ in rails] == ["slot12V", "slot3V3"]
        assert sum(frac for _, _, frac in rails) == pytest.approx(1.0)

    def test_gtx580_has_external_connectors(self):
        """Paper: 'The GTX580 also has two external PCIe power
        connectors'."""
        rails = VirtualGPU(gtx580()).rail_split()
        ext = [name for name, _, _ in rails if name.startswith("ext")]
        assert len(ext) == 2
        assert sum(frac for _, _, frac in rails) == pytest.approx(1.0)
