"""Tests for the ASCII figure rendering and CSV export helpers."""

import csv
import io

import pytest

from repro.core.validation import KernelValidation
from repro.experiments.figures import (fig4_chart, fig4_csv, fig6_chart,
                                       fig6_csv, hbar, rows_to_csv,
                                       stacked_hbar)


def make_row(kernel="k", sim_total=40.0, meas_total=35.0,
             sim_static=18.0, meas_static=17.5):
    return KernelValidation(
        kernel=kernel,
        simulated_static_w=sim_static,
        simulated_dynamic_w=sim_total - sim_static,
        simulated_total_w=sim_total,
        measured_total_w=meas_total,
        measured_static_w=meas_static,
    )


class TestBars:
    def test_hbar_scales(self):
        assert hbar(5, 10, width=10) == "#####"
        assert hbar(10, 10, width=10) == "#" * 10

    def test_hbar_clamps(self):
        assert hbar(20, 10, width=10) == "#" * 10
        assert hbar(-1, 10, width=10) == ""

    def test_hbar_zero_max(self):
        assert hbar(5, 0) == ""

    def test_stacked_total_length(self):
        bar = stacked_hbar([(5, "#"), (5, "+")], 10, width=10)
        assert bar == "#####+++++"

    def test_stacked_respects_width(self):
        bar = stacked_hbar([(8, "#"), (8, "+")], 10, width=10)
        assert len(bar) == 10


class TestFig6Chart:
    def test_chart_has_two_bars_per_kernel(self):
        rows = [make_row("alpha"), make_row("beta", sim_total=60)]
        chart = fig6_chart(rows)
        assert chart.count("sim  |") == 2
        assert chart.count("meas |") == 2
        assert "alpha" in chart and "beta" in chart

    def test_bigger_power_longer_bar(self):
        rows = [make_row("small", sim_total=20, sim_static=10),
                make_row("large", sim_total=60, sim_static=10)]
        chart = fig6_chart(rows, width=40)
        lines = [l for l in chart.splitlines() if "sim  |" in l]
        small_len = lines[0].count("#") + lines[0].count("+")
        large_len = lines[1].count("#") + lines[1].count("+")
        assert large_len > small_len


class TestFig4Chart:
    def test_monotone_bars(self):
        points = [(b, 20.0 + b) for b in range(1, 13)]
        chart = fig4_chart(points, idle_w=19.5)
        lines = [l for l in chart.splitlines() if "blocks" in l]
        assert len(lines) == 12
        lengths = [l.count("#") for l in lines]
        assert lengths == sorted(lengths)


class TestCSV:
    def test_rows_to_csv_roundtrip(self):
        text = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_fig6_csv_shape(self):
        class FakeResult:
            suites = {"GT240": type("S", (), {
                "kernels": [make_row("k1"), make_row("k2")]})()}
        text = fig6_csv(FakeResult())
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0][0] == "gpu"
        assert len(parsed) == 3

    def test_fig4_csv_shape(self):
        class FakeStair:
            points = [(1, 25.0), (2, 26.0)]
        text = fig4_csv(FakeStair())
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[1] == ["1", "25.0000"]
