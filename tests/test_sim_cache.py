"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import SetAssocCache


class TestGeometry:
    def test_sets_computed(self):
        c = SetAssocCache(1024, 64, 4)
        assert c.n_sets == 4

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            SetAssocCache(1000, 64, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SetAssocCache(0, 64, 4)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = SetAssocCache(1024, 64, 4)
        assert not c.lookup(0)
        assert c.lookup(0)
        assert c.read_misses == 1 and c.reads == 2

    def test_same_line_hits(self):
        c = SetAssocCache(1024, 64, 4)
        c.lookup(0)
        assert c.lookup(63)
        assert not c.lookup(64)

    def test_lru_eviction_order(self):
        c = SetAssocCache(2 * 64, 64, 2)  # 1 set, 2 ways
        c.lookup(0)
        c.lookup(64)
        c.lookup(0)        # 0 is now MRU
        c.lookup(128)      # evicts 64
        assert c.probe(0)
        assert not c.probe(64)
        assert c.evictions == 1

    def test_write_no_allocate(self):
        c = SetAssocCache(1024, 64, 4)
        c.lookup(0, is_write=True, allocate=False)
        assert c.write_misses == 1
        assert not c.probe(0)

    def test_write_allocate(self):
        c = SetAssocCache(1024, 64, 4)
        c.lookup(0, is_write=True, allocate=True)
        assert c.probe(0)

    def test_probe_no_side_effects(self):
        c = SetAssocCache(1024, 64, 4)
        c.probe(0)
        assert c.accesses == 0 and not c.probe(0)

    def test_flush(self):
        c = SetAssocCache(1024, 64, 4)
        c.lookup(0)
        c.flush()
        assert not c.probe(0)
        assert c.reads == 1  # counters preserved

    def test_miss_rate(self):
        c = SetAssocCache(1024, 64, 4)
        assert c.miss_rate() == 0.0
        c.lookup(0)
        c.lookup(0)
        assert c.miss_rate() == 0.5

    def test_working_set_within_capacity_all_hits(self):
        c = SetAssocCache(4096, 64, 4)
        lines = [i * 64 for i in range(64)]  # exactly fills the cache
        for addr in lines:
            c.lookup(addr)
        for addr in lines:
            assert c.lookup(addr), f"line {addr} should still be resident"


class TestProperties:
    @given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_ways(self, addrs):
        c = SetAssocCache(1024, 64, 4)
        for a in addrs:
            c.lookup(a)
        for ways in c._sets:
            assert len(ways) <= c.assoc

    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        c = SetAssocCache(2048, 64, 4)
        for a in addrs:
            c.lookup(a)
            assert c.probe(a)

    @given(addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_counts_consistent(self, addrs):
        c = SetAssocCache(2048, 64, 4)
        for a in addrs:
            c.lookup(a)
        assert c.reads == len(addrs)
        assert c.misses <= c.accesses
