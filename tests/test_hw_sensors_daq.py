"""Unit tests for the measurement signal chain (sensors + DAQ)."""

import numpy as np
import pytest

from repro.hw.daq import DAQ, SAMPLE_RATE_HZ
from repro.hw.sensors import (AD8210_GAIN, ResistiveDivider, ShuntMonitor,
                              make_divider, make_monitor)


class TestShuntMonitor:
    def test_nominal_transfer(self):
        mon = ShuntMonitor(shunt_ohm=20e-3)
        out = mon.output(np.array([1.0]))  # 1 A -> 20 mV -> x20 = 0.4 V
        assert out[0] == pytest.approx(0.4)

    def test_roundtrip_without_errors(self):
        mon = ShuntMonitor(shunt_ohm=20e-3)
        current = np.array([0.5, 1.0, 2.0])
        assert np.allclose(mon.current_from_output(mon.output(current)),
                           current)

    def test_gain_error_biases_reading(self):
        mon = ShuntMonitor(shunt_ohm=20e-3, gain_error=0.005)
        reading = mon.current_from_output(mon.output(np.array([1.0])))
        assert reading[0] == pytest.approx(1.005)

    def test_offset_translates_to_current_error(self):
        mon = ShuntMonitor(shunt_ohm=20e-3, offset_v=1e-3)
        reading = mon.current_from_output(mon.output(np.array([0.0])))
        # 1 mV / (20 mOhm * 20) = 2.5 mA; at 12 V that's 30 mW -- within
        # the paper's quoted "up to 60 mW" bound for +/-1 mV offset.
        assert reading[0] == pytest.approx(1e-3 / (20e-3 * AD8210_GAIN))
        assert abs(reading[0] * 12.0) <= 0.060

    def test_manufactured_within_tolerance(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            mon = make_monitor(rng, 20e-3)
            assert abs(mon.gain_error) <= 0.005
            assert abs(mon.offset_v) <= 1e-3


class TestResistiveDivider:
    def test_nominal_ratio_targets_daq_range(self):
        rng = np.random.default_rng(0)
        div = make_divider(rng, 12.0)
        out = div.output(np.array([12.0]))
        assert 0 < out[0] <= 5.0

    def test_roundtrip(self):
        div = ResistiveDivider(ratio=3.0)
        v = np.array([3.3, 12.0])
        assert np.allclose(div.voltage_from_output(div.output(v)), v)

    def test_gain_error_bound(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            assert abs(make_divider(rng, 12.0).gain_error) <= 0.017

    def test_low_rail_not_divided_below_unity(self):
        rng = np.random.default_rng(0)
        div = make_divider(rng, 3.3)
        assert div.ratio >= 1.0


class TestDAQ:
    def make(self):
        return DAQ(np.random.default_rng(2))

    def test_timebase_rate(self):
        daq = self.make()
        t = daq.timebase(1.0)
        assert len(t) == int(SAMPLE_RATE_HZ)
        assert t[1] - t[0] == pytest.approx(1.0 / SAMPLE_RATE_HZ)

    def test_sampling_accuracy(self):
        daq = self.make()
        signal = np.full(1000, 2.5)
        sampled = daq.sample(signal)
        assert sampled.mean() == pytest.approx(2.5, abs=2e-3)

    def test_clipping_at_range(self):
        daq = self.make()
        sampled = daq.sample(np.full(10, 7.0))
        assert (sampled <= 5.0).all()

    def test_quantization_grid(self):
        daq = self.make()
        sampled = daq.sample(np.linspace(0, 4, 100))
        lsb = 10.0 / (1 << 16)
        ratio = sampled / lsb
        assert np.allclose(ratio, np.round(ratio), atol=1e-6)

    def test_noise_small(self):
        daq = self.make()
        sampled = daq.sample(np.zeros(10000))
        assert sampled.std() < 1e-3
