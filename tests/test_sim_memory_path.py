"""Unit tests for the memory path: AGU, coalescer, shared memory banks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.agu import AGU
from repro.sim.coalescer import Coalescer
from repro.sim.config import gt240
from repro.sim.smem import SharedMemory


class TestAGU:
    def test_full_warp_occupancy(self):
        agu = AGU(gt240())
        # 32 addresses over 4 sub-AGUs of width 8 -> 1 cycle, 4 activations
        assert agu.generate(32) == 1
        assert agu.sub_agu_ops == 4

    def test_partial_warp(self):
        agu = AGU(gt240())
        assert agu.generate(9) == 1
        assert agu.sub_agu_ops == 2  # ceil(9/8)

    def test_zero_addresses_free(self):
        agu = AGU(gt240())
        assert agu.generate(0) == 0
        assert agu.sub_agu_ops == 0 and agu.instructions == 0

    def test_wide_access_multiple_cycles(self):
        agu = AGU(gt240().scaled(warp_size=32))
        # 64 addresses (e.g. 64B vectors) -> 8 activations over 4 SAGUs
        assert agu.generate(64) == 2


class TestCoalescer:
    def make(self, **over):
        return Coalescer(gt240().scaled(**over))

    def test_fully_coalesced_single_transaction(self):
        c = self.make()
        byte_addrs = np.arange(32) * 4  # 128 consecutive bytes, aligned
        txns = c.coalesce(byte_addrs)
        assert len(txns) == 1
        assert txns[0] == (0, 128)

    def test_strided_access_degenerates(self):
        c = self.make()
        byte_addrs = np.arange(32) * 128  # one segment per lane
        assert len(c.coalesce(byte_addrs)) == 32

    def test_unaligned_spans_two_segments(self):
        c = self.make()
        byte_addrs = np.arange(32) * 4 + 64
        assert len(c.coalesce(byte_addrs)) == 2

    def test_same_address_broadcast(self):
        c = self.make()
        byte_addrs = np.zeros(32, dtype=np.int64)
        assert len(c.coalesce(byte_addrs)) == 1

    def test_empty_access(self):
        c = self.make()
        assert c.coalesce(np.array([], dtype=np.int64)) == []
        assert c.accesses == 0

    def test_counters(self):
        c = self.make()
        c.coalesce(np.arange(32) * 4)
        assert c.accesses == 1
        assert c.transactions == 1
        assert c.prt_writes == 1
        assert c.addresses == 32

    def test_efficiency(self):
        c = self.make()
        c.coalesce(np.arange(32) * 4)
        assert c.efficiency() == 32.0

    def test_segment_size_respected(self):
        c = self.make(coalesce_segment_bytes=32)
        txns = c.coalesce(np.arange(32) * 4)
        assert len(txns) == 4
        assert all(size == 32 for _, size in txns)

    def test_coalescing_disabled(self):
        c = self.make(coalescing_enabled=False)
        txns = c.coalesce(np.arange(32) * 4)
        assert len(txns) == 4  # 128 bytes in 32-byte pieces
        assert all(size == 32 for _, size in txns)

    @given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_transactions_cover_all_addresses(self, addrs):
        c = self.make()
        byte_addrs = np.array(addrs, dtype=np.int64)
        txns = c.coalesce(byte_addrs)
        for a in addrs:
            assert any(base <= a < base + size for base, size in txns)

    @given(addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_never_more_transactions_than_lanes(self, addrs):
        c = self.make()
        txns = c.coalesce(np.array(addrs, dtype=np.int64))
        assert 1 <= len(txns) <= len(addrs)


class TestSharedMemory:
    def make(self):
        return SharedMemory(gt240())  # 16 banks

    def test_unit_stride_two_half_warp_phases(self):
        s = self.make()
        # 32 unit-stride addresses over 16 banks: each bank serves two
        # different words -> two phases (the half-warp cadence of GT200).
        assert s.access(np.arange(32)) == 2
        assert s.conflict_phases == 1

    def test_unit_stride_conflict_free_on_32_banks(self):
        from repro.sim.config import gtx580
        s = SharedMemory(gtx580())  # 32 banks
        assert s.access(np.arange(32)) == 1
        assert s.conflict_phases == 0

    def test_four_way_conflict_stride_2(self):
        s = self.make()
        # stride 2 over 16 banks: only even banks hit, 4 words each.
        assert s.access(np.arange(32) * 2) == 4

    def test_worst_case_same_bank(self):
        s = self.make()
        # stride 16 = bank count: all 32 addresses in one bank
        assert s.access(np.arange(32) * 16) == 32

    def test_broadcast_single_address(self):
        s = self.make()
        assert s.access(np.zeros(32, dtype=np.int64)) == 1
        assert s.bank_accesses == 1  # one physical read, broadcast

    def test_empty(self):
        s = self.make()
        assert s.access(np.array([], dtype=np.int64)) == 0

    def test_counters(self):
        s = self.make()
        s.access(np.arange(32) * 2)
        assert s.conflict_checks == 1
        assert s.bank_accesses == 32
        assert s.conflict_phases == 3
        assert s.xbar_transfers == 32

    @given(addrs=st.lists(st.integers(0, 4095), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_phase_bounds(self, addrs):
        s = self.make()
        phases = s.access(np.array(addrs, dtype=np.int64))
        distinct = len(set(addrs))
        assert 1 <= phases <= distinct
