"""Unit tests for repro.runner: jobs, cache keys, cache, and the engine."""

import os

import numpy as np
import pytest

import repro
from repro.isa import Dim3, KernelLaunch
from repro.runner import (AUTO, JobResult, ResultCache, RunnerError, SimJob,
                          job_key, resolve_cache, resolve_jobs, run_jobs,
                          set_default_cache, set_default_jobs)
from repro.sim import gt240, gtx580
from tests.conftest import build_vecadd_launch


@pytest.fixture()
def tiny_job():
    launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
    return SimJob(config=gt240(), kernel="tiny_vecadd", launch=launch)


@pytest.fixture(autouse=True)
def clean_runner_defaults():
    """Keep the process-wide runner defaults out of other tests."""
    yield
    set_default_jobs(None)
    set_default_cache(AUTO)


class TestSimJob:
    def test_needs_kernel_or_launch(self):
        with pytest.raises(ValueError):
            SimJob(config=gt240())

    def test_label(self, tiny_job):
        assert tiny_job.label == "tiny_vecadd@GT240"
        assert SimJob(config=gt240(), kernel="x", launch=tiny_job.launch,
                      tag="probe").label == "probe"

    def test_resolve_launch_prefers_explicit(self, tiny_job):
        assert tiny_job.resolve_launch() is tiny_job.launch

    def test_resolve_launch_by_workload_label(self, launches):
        job = SimJob(config=gt240(), kernel="vectorAdd")
        resolved = job.resolve_launch()
        assert resolved.kernel.name == launches["vectorAdd"].kernel.name

    def test_resolve_launch_unknown_label(self):
        with pytest.raises(KeyError):
            SimJob(config=gt240(), kernel="noSuchKernel").resolve_launch()


class TestJobKey:
    def test_stable_across_calls(self, tiny_job):
        assert job_key(tiny_job) == job_key(tiny_job)

    def test_workload_label_matches_explicit_launch(self, launches):
        by_label = SimJob(config=gt240(), kernel="vectorAdd")
        explicit = SimJob(config=gt240(), kernel="vectorAdd",
                          launch=launches["vectorAdd"])
        assert job_key(by_label) == job_key(explicit)

    def test_sensitive_to_config(self, tiny_job):
        other = SimJob(config=gtx580(), kernel=tiny_job.kernel,
                       launch=tiny_job.launch)
        assert job_key(other) != job_key(tiny_job)

    def test_sensitive_to_single_config_field(self, tiny_job):
        tweaked = SimJob(config=gt240().scaled(warp_size=16),
                         kernel=tiny_job.kernel, launch=tiny_job.launch)
        assert job_key(tweaked) != job_key(tiny_job)

    def test_sensitive_to_launch_dims(self, tiny_job):
        launch = tiny_job.launch
        wider = KernelLaunch(kernel=launch.kernel, grid=Dim3(2),
                             block=launch.block,
                             globals_init=launch.globals_init,
                             gmem_words=launch.gmem_words)
        job = SimJob(config=gt240(), launch=wider)
        assert job_key(job) != job_key(tiny_job)

    def test_sensitive_to_initial_memory(self, tiny_job):
        launch = tiny_job.launch
        init = {off: np.asarray(arr).copy()
                for off, arr in launch.globals_init.items()}
        first = sorted(init)[0]
        init[first] = init[first] + 1.0
        changed = KernelLaunch(kernel=launch.kernel, grid=launch.grid,
                               block=launch.block, globals_init=init,
                               gmem_words=launch.gmem_words)
        job = SimJob(config=gt240(), launch=changed)
        assert job_key(job) != job_key(tiny_job)

    def test_sensitive_to_sim_version(self, tiny_job, monkeypatch):
        before = job_key(tiny_job)
        monkeypatch.setattr(repro, "SIM_VERSION", "9999.test")
        assert job_key(tiny_job) != before


class TestResultCache:
    def test_roundtrip_bit_identical(self, tiny_job, tmp_path):
        cache = ResultCache(tmp_path)
        out = tiny_job.execute()
        cache.put(tiny_job, out.activity, out.cycles)
        hit = cache.get(tiny_job)
        assert hit is not None and hit.cached
        assert hit.cycles == out.cycles
        assert hit.activity.as_dict() == out.activity.as_dict()

    def test_miss_on_empty(self, tiny_job, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(tiny_job) is None
        assert cache.misses == 1

    def test_corrupt_entry_degrades_to_miss(self, tiny_job, tmp_path):
        cache = ResultCache(tmp_path)
        out = tiny_job.execute()
        key = cache.put(tiny_job, out.activity, out.cycles)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(tiny_job) is None

    def test_version_bump_invalidates(self, tiny_job, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        out = tiny_job.execute()
        cache.put(tiny_job, out.activity, out.cycles)
        monkeypatch.setattr(repro, "SIM_VERSION", "9999.test")
        # New tag -> new key -> miss; and even a forced lookup of the old
        # entry refuses to load it.
        assert cache.get(tiny_job) is None

    def test_invalidate_and_clear(self, tiny_job, tmp_path):
        cache = ResultCache(tmp_path)
        out = tiny_job.execute()
        key = cache.put(tiny_job, out.activity, out.cycles)
        assert cache.entries() == 1
        assert cache.invalidate(key)
        assert not cache.invalidate(key)
        cache.put(tiny_job, out.activity, out.cycles)
        assert cache.clear() == 1
        assert cache.entries() == 0

    def test_env_var_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env_cache"))
        assert ResultCache().root == tmp_path / "env_cache"


class TestResolvers:
    def test_jobs_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        set_default_jobs(2)
        assert resolve_jobs(None) == 2
        assert resolve_jobs(5) == 5

    def test_cache_env_values(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_cache(AUTO) is None
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert resolve_cache(AUTO) is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert resolve_cache(AUTO).root == tmp_path
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "explicit"))
        assert resolve_cache(AUTO).root == tmp_path / "explicit"

    def test_cache_passthrough_and_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(None) is None
        set_default_cache(cache)
        assert resolve_cache(AUTO) is cache


class TestRunJobs:
    def test_empty(self):
        assert run_jobs([]) == []

    def test_serial_matches_direct_execution(self, tiny_job):
        direct = tiny_job.execute()
        result, = run_jobs([tiny_job], n_jobs=1, cache=None)
        assert isinstance(result, JobResult)
        assert not result.cached and result.worker == -1
        assert result.cycles == direct.cycles
        assert result.activity.as_dict() == direct.activity.as_dict()

    def test_cache_hit_skips_simulation(self, tiny_job, tmp_path):
        cache = ResultCache(tmp_path)
        cold, = run_jobs([tiny_job], n_jobs=1, cache=cache)
        warm, = run_jobs([tiny_job], n_jobs=1, cache=cache)
        assert not cold.cached and warm.cached
        assert cache.stores == 1 and cache.hits == 1
        assert warm.activity.as_dict() == cold.activity.as_dict()

    def test_results_in_job_order(self, launches):
        names = ["scalarProd", "vectorAdd", "bfs2"]
        jobs = [SimJob(config=gt240(), kernel=n, launch=launches[n])
                for n in names]
        results = run_jobs(jobs, n_jobs=2, cache=None)
        assert [r.job.kernel for r in results] == names

    def test_progress_callback(self, tiny_job, tmp_path):
        seen = []
        run_jobs([tiny_job], n_jobs=1, cache=ResultCache(tmp_path),
                 progress=lambda done, total, r: seen.append((done, total,
                                                              r.cached)))
        assert seen == [(1, 1, False)]

    def test_serial_failure_fails_fast(self):
        bad = SimJob(config=gt240(), kernel="noSuchKernel")
        with pytest.raises(RunnerError) as exc:
            run_jobs([bad], n_jobs=1, cache=None)
        assert "noSuchKernel" in str(exc.value)

    def test_pool_aggregates_all_failures(self, tiny_job):
        bad1 = SimJob(config=gt240(), kernel="noSuchKernelA")
        bad2 = SimJob(config=gt240(), kernel="noSuchKernelB")
        with pytest.raises(RunnerError) as exc:
            run_jobs([bad1, tiny_job, bad2], n_jobs=2, cache=None)
        assert len(exc.value.failures) == 2
