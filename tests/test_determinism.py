"""Determinism regressions for the runner and the vectorized hot path.

Two invariants the runner's correctness rests on:

* serial, pooled and cached execution of the same jobs produce
  field-by-field identical activity reports (pickle and repr-JSON both
  round-trip float64 exactly);
* the numpy-vectorised functional execution computes exactly what a
  per-lane scalar interpreter computes -- same counters, same final
  memory image.
"""

from dataclasses import fields

import numpy as np
import pytest

from repro.runner import ResultCache, SimJob, run_jobs
from repro.sim import GPU, gt240
from repro.sim.activity import ActivityReport
from repro.sim.functional_ref import execute_alu_reference

#: Small-but-diverse suite: trivial FP, reduction loop, divergent graph.
SUITE = ["vectorAdd", "scalarProd", "bfs2"]


class TestExecutionPathEquivalence:
    @pytest.fixture(scope="class")
    def three_ways(self, launches, tmp_path_factory):
        jobs = [SimJob(config=gt240(), kernel=n, launch=launches[n])
                for n in SUITE]
        cache = ResultCache(tmp_path_factory.mktemp("det_cache"))
        serial = run_jobs(jobs, n_jobs=1, cache=None)
        pooled = run_jobs(jobs, n_jobs=3, cache=cache)
        cached = run_jobs(jobs, n_jobs=1, cache=cache)
        assert all(r.cached for r in cached)
        assert not any(r.cached for r in serial + pooled)
        return serial, pooled, cached

    def test_identical_field_by_field(self, three_ways):
        serial, pooled, cached = three_ways
        for s, p, c in zip(serial, pooled, cached):
            for f in fields(ActivityReport):
                sv = getattr(s.activity, f.name)
                assert getattr(p.activity, f.name) == sv, \
                    f"pool diverges on {f.name} for {s.label}"
                assert getattr(c.activity, f.name) == sv, \
                    f"cache diverges on {f.name} for {s.label}"
            assert s.cycles == p.cycles == c.cycles

    def test_counter_types_survive_transport(self, three_ways):
        serial, pooled, cached = three_ways
        for results in (pooled, cached):
            for s, r in zip(serial, results):
                for f in fields(ActivityReport):
                    assert type(getattr(r.activity, f.name)) is \
                        type(getattr(s.activity, f.name))

    def test_traced_execution_is_bit_identical(self, three_ways, launches):
        """Telemetry only reads counters: a traced run's aggregate must
        equal the untraced run's, field by field."""
        serial, _, _ = three_ways
        traced = run_jobs(
            [SimJob(config=gt240(), kernel=n, launch=launches[n],
                    trace_interval=500.0) for n in SUITE],
            n_jobs=1, cache=None)
        for s, t in zip(serial, traced):
            assert t.windows, t.label
            for f in fields(ActivityReport):
                assert getattr(t.activity, f.name) == \
                    getattr(s.activity, f.name), \
                    f"tracing perturbs {f.name} for {s.label}"
            assert t.cycles == s.cycles


class TestVectorizedVsScalarReference:
    @pytest.mark.parametrize("kernel", ["vectorAdd", "scalarProd", "bfs2"])
    def test_bit_identical_to_scalar_interpreter(self, kernel, launches,
                                                 monkeypatch):
        launch = launches[kernel]
        fast = GPU(gt240()).run(launch)
        monkeypatch.setattr("repro.sim.core.execute_alu",
                            execute_alu_reference)
        slow = GPU(gt240()).run(launch)
        assert slow.activity.as_dict() == fast.activity.as_dict()
        assert slow.cycles == fast.cycles
        np.testing.assert_array_equal(slow.gmem, fast.gmem)

    def test_sfu_kernel_matches_scalar_reference(self, launches, monkeypatch):
        """BlackScholes exercises every SFU op (EXP2/LOG2/SQRT/RCP)."""
        launch = launches["BlackScholes"]
        fast = GPU(gt240()).run(launch)
        monkeypatch.setattr("repro.sim.core.execute_alu",
                            execute_alu_reference)
        slow = GPU(gt240()).run(launch)
        assert slow.activity.as_dict() == fast.activity.as_dict()
        np.testing.assert_array_equal(slow.gmem, fast.gmem)
