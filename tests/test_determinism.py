"""Determinism regressions for the runner and the vectorized hot path.

Three invariants the runner's correctness rests on:

* serial, pooled and cached execution of the same jobs produce
  field-by-field identical activity reports (pickle and repr-JSON both
  round-trip float64 exactly);
* fault-retried execution (a killed worker, a timed-out attempt) lands
  on exactly the same numbers -- a retry is a clean re-run, never a
  perturbation;
* the numpy-vectorised functional execution computes exactly what a
  per-lane scalar interpreter computes -- same counters, same final
  memory image.
"""

from dataclasses import fields

import numpy as np
import pytest

from repro.runner import ResultCache, SimJob, run_jobs, set_fault_plan
from repro.sim import GPU, gt240
from repro.sim.activity import ActivityReport
from repro.sim.functional_ref import execute_alu_reference

#: Small-but-diverse suite: trivial FP, reduction loop, divergent graph.
SUITE = ["vectorAdd", "scalarProd", "bfs2"]


class TestExecutionPathEquivalence:
    @pytest.fixture(scope="class")
    def three_ways(self, launches, tmp_path_factory):
        jobs = [SimJob(config=gt240(), kernel=n, launch=launches[n])
                for n in SUITE]
        cache = ResultCache(tmp_path_factory.mktemp("det_cache"))
        serial = run_jobs(jobs, n_jobs=1, cache=None)
        pooled = run_jobs(jobs, n_jobs=3, cache=cache)
        cached = run_jobs(jobs, n_jobs=1, cache=cache)
        assert all(r.cached for r in cached)
        assert not any(r.cached for r in serial + pooled)
        return serial, pooled, cached

    def test_identical_field_by_field(self, three_ways):
        serial, pooled, cached = three_ways
        for s, p, c in zip(serial, pooled, cached):
            for f in fields(ActivityReport):
                sv = getattr(s.activity, f.name)
                assert getattr(p.activity, f.name) == sv, \
                    f"pool diverges on {f.name} for {s.label}"
                assert getattr(c.activity, f.name) == sv, \
                    f"cache diverges on {f.name} for {s.label}"
            assert s.cycles == p.cycles == c.cycles

    def test_counter_types_survive_transport(self, three_ways):
        serial, pooled, cached = three_ways
        for results in (pooled, cached):
            for s, r in zip(serial, results):
                for f in fields(ActivityReport):
                    assert type(getattr(r.activity, f.name)) is \
                        type(getattr(s.activity, f.name))

    def test_traced_execution_is_bit_identical(self, three_ways, launches):
        """Telemetry only reads counters: a traced run's aggregate must
        equal the untraced run's, field by field."""
        serial, _, _ = three_ways
        traced = run_jobs(
            [SimJob(config=gt240(), kernel=n, launch=launches[n],
                    trace_interval=500.0) for n in SUITE],
            n_jobs=1, cache=None)
        for s, t in zip(serial, traced):
            assert t.windows, t.label
            for f in fields(ActivityReport):
                assert getattr(t.activity, f.name) == \
                    getattr(s.activity, f.name), \
                    f"tracing perturbs {f.name} for {s.label}"
            assert t.cycles == s.cycles


class TestRetryPathEquivalence:
    """A fault-retried execution is a fourth path that must match the
    other three bit for bit."""

    @pytest.fixture(autouse=True)
    def clear_plan(self):
        yield
        set_fault_plan(None)

    @pytest.fixture(scope="class")
    def serial(self, launches):
        jobs = [SimJob(config=gt240(), kernel=n, launch=launches[n])
                for n in SUITE]
        return run_jobs(jobs, n_jobs=1, cache=None)

    def test_killed_and_retried_matches_serial(self, serial, launches):
        jobs = [SimJob(config=gt240(), kernel=n, launch=launches[n])
                for n in SUITE]
        # Kill the first pooled attempt of every job; the sweep must
        # recover and land on the exact same counters.
        set_fault_plan({job.label: ["kill"] for job in jobs})
        retried = run_jobs(jobs, n_jobs=3, cache=None, backoff_s=0.0)
        for s, r in zip(serial, retried):
            assert r.attempts == 2, r.label
            for f in fields(ActivityReport):
                assert getattr(r.activity, f.name) == \
                    getattr(s.activity, f.name), \
                    f"retry diverges on {f.name} for {s.label}"
                assert type(getattr(r.activity, f.name)) is \
                    type(getattr(s.activity, f.name))
            assert r.cycles == s.cycles

    def test_timed_out_and_retried_matches_serial(self, serial, launches):
        name = SUITE[0]
        job = SimJob(config=gt240(), kernel=name, launch=launches[name])
        set_fault_plan({job.label: ["delay:30"]})
        retried, = run_jobs([job, SimJob(config=gt240(), kernel=SUITE[1],
                                         launch=launches[SUITE[1]])],
                            n_jobs=2, cache=None, timeout_s=3.0,
                            backoff_s=0.0)[:1]
        assert retried.attempts == 2
        assert retried.activity.as_dict() == serial[0].activity.as_dict()
        assert retried.cycles == serial[0].cycles


class TestVectorizedVsScalarReference:
    @pytest.mark.parametrize("kernel", ["vectorAdd", "scalarProd", "bfs2"])
    def test_bit_identical_to_scalar_interpreter(self, kernel, launches,
                                                 monkeypatch):
        launch = launches[kernel]
        fast = GPU(gt240()).run(launch)
        monkeypatch.setattr("repro.sim.core.execute_alu",
                            execute_alu_reference)
        slow = GPU(gt240()).run(launch)
        assert slow.activity.as_dict() == fast.activity.as_dict()
        assert slow.cycles == fast.cycles
        np.testing.assert_array_equal(slow.gmem, fast.gmem)

    def test_sfu_kernel_matches_scalar_reference(self, launches, monkeypatch):
        """BlackScholes exercises every SFU op (EXP2/LOG2/SQRT/RCP)."""
        launch = launches["BlackScholes"]
        fast = GPU(gt240()).run(launch)
        monkeypatch.setattr("repro.sim.core.execute_alu",
                            execute_alu_reference)
        slow = GPU(gt240()).run(launch)
        assert slow.activity.as_dict() == fast.activity.as_dict()
        np.testing.assert_array_equal(slow.gmem, fast.gmem)
