"""Unit and property tests for the circuit tier (CACTI-lite models)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.circuits import (ArrayOrganisation, cam_array, clock_network,
                                  comparator, crossbar, dff_storage, fsm,
                                  instruction_decoder, logic_block,
                                  merge_estimates, priority_encoder,
                                  repeated_wire, rotating_priority_scheduler,
                                  sram_array)
from repro.power.circuits.base import CircuitEstimate, energies_only
from repro.power.tech import tech_node

T40 = tech_node(40)


class TestSRAMArray:
    def make(self, words=256, bits=32, **kw):
        return sram_array("a", ArrayOrganisation(words, bits, **kw), T40)

    def test_positive_outputs(self):
        a = self.make()
        assert a.area > 0 and a.leakage_w > 0
        assert a.energy("read") > 0 and a.energy("write") > 0

    def test_bigger_array_more_area_and_leakage(self):
        small, big = self.make(256), self.make(4096)
        assert big.area > small.area
        assert big.leakage_w > small.leakage_w

    def test_bigger_array_higher_access_energy(self):
        small, big = self.make(64), self.make(8192)
        assert big.energy("read") > small.energy("read")

    def test_extra_ports_cost_area(self):
        single = self.make(rw_ports=1)
        triple = self.make(rw_ports=1, read_ports=2)
        assert triple.area > single.area
        assert triple.leakage_w > single.leakage_w

    def test_banking_reduces_access_energy(self):
        mono = self.make(words=4096)
        banked = self.make(words=4096, banks=8)
        assert banked.energy("read") < mono.energy("read")

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ArrayOrganisation(0, 32)
        with pytest.raises(ValueError):
            ArrayOrganisation(64, 32, rw_ports=0, read_ports=0,
                              write_ports=0)

    @given(words=st.integers(8, 65536), bits=st.integers(8, 512))
    @settings(max_examples=40, deadline=None)
    def test_always_physical(self, words, bits):
        a = sram_array("p", ArrayOrganisation(words, bits), T40)
        assert a.area > 0
        assert 0 < a.energy("read") < 1e-6   # below a microjoule
        assert 0 < a.leakage_w < 10          # below 10 W for any table

    def test_node_scaling_reduces_energy(self):
        org = ArrayOrganisation(1024, 64)
        e40 = sram_array("x", org, tech_node(40)).energy("read")
        e28 = sram_array("x", org, tech_node(28)).energy("read")
        assert e28 < e40


class TestDFFStorage:
    def test_scales_linearly_with_bits(self):
        a, b = dff_storage("a", 100, T40), dff_storage("b", 200, T40)
        assert b.area == pytest.approx(2 * a.area)
        assert b.leakage_w == pytest.approx(2 * a.leakage_w)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            dff_storage("z", 0, T40)

    def test_per_bit_energies_exposed(self):
        d = dff_storage("d", 64, T40)
        assert d.energy("write") == pytest.approx(64 * d.energy("write_bit"))


class TestCAM:
    def test_search_costs_more_than_read(self):
        c = cam_array("c", entries=32, tag_bits=6, payload_bits=64, tech=T40)
        assert c.energy("search") > c.energy("read")

    def test_more_entries_more_search_energy(self):
        a = cam_array("a", 16, 6, 64, T40)
        b = cam_array("b", 128, 6, 64, T40)
        assert b.energy("search") > a.energy("search")

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            cam_array("x", 0, 6, 64, T40)


class TestLogic:
    def test_logic_block_scales(self):
        a = logic_block("a", 100, T40)
        b = logic_block("b", 1000, T40)
        assert b.area == pytest.approx(10 * a.area)

    def test_priority_encoder_grows_superlinear(self):
        e8 = priority_encoder("e8", 8, T40)
        e64 = priority_encoder("e64", 64, T40)
        assert e64.energy("op") > 8 * e8.energy("op") / 2

    def test_scheduler_composition(self):
        s = rotating_priority_scheduler("s", 24, T40)
        e = priority_encoder("e", 24, T40)
        assert s.energy("op") > e.energy("op")  # encoder + rotate + counter
        assert s.area > e.area

    def test_decoder_comparator_fsm_positive(self):
        for circ in (instruction_decoder("d", 8, T40),
                     comparator("c", 32, T40),
                     fsm("f", 8, 12, T40)):
            assert circ.area > 0 and circ.energy("op") > 0

    def test_rejects_nonpositive_gates(self):
        with pytest.raises(ValueError):
            logic_block("x", 0, T40)


class TestWiresXbarClock:
    def test_wire_energy_scales_with_length(self):
        short = repeated_wire("s", 1e-3, 32, T40)
        long = repeated_wire("l", 2e-3, 32, T40)
        assert long.energy("transfer") == pytest.approx(
            2 * short.energy("transfer"))

    def test_wire_rejects_negative(self):
        with pytest.raises(ValueError):
            repeated_wire("x", -1.0, 32, T40)

    def test_xbar_grows_with_ports(self):
        small = crossbar("s", 4, 4, 128, T40)
        big = crossbar("b", 16, 16, 128, T40)
        assert big.area > small.area
        assert big.energy("transfer") > small.energy("transfer")

    def test_xbar_rejects_degenerate(self):
        with pytest.raises(ValueError):
            crossbar("x", 0, 4, 128, T40)

    def test_clock_network_scales_with_area(self):
        small = clock_network("s", 1e-6, 1e4, T40)
        big = clock_network("b", 1e-4, 1e4, T40)
        assert big.energy("cycle") > small.energy("cycle")

    def test_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            clock_network("x", -1.0, 10, T40)


class TestEstimateAlgebra:
    def test_scaled(self):
        a = dff_storage("a", 100, T40)
        s = a.scaled(4)
        assert s.area == pytest.approx(4 * a.area)
        assert s.energy("write") == a.energy("write")  # per-event unchanged

    def test_energies_only(self):
        a = dff_storage("a", 100, T40)
        e = energies_only(a)
        assert e.area == 0 and e.leakage_w == 0
        assert e.energy("write") == a.energy("write")

    def test_merge_adds(self):
        a = dff_storage("a", 100, T40)
        b = dff_storage("b", 50, T40)
        m = merge_estimates("m", [a, b])
        assert m.area == pytest.approx(a.area + b.area)
        assert m.energy("write") == pytest.approx(
            a.energy("write") + b.energy("write"))

    def test_energy_unknown_op_raises(self):
        a = dff_storage("a", 10, T40)
        with pytest.raises(KeyError):
            a.energy("teleport")
