"""Unit tests for the instruction set definitions."""

import pytest

from repro.isa.instructions import (ALL_OPS, Imm, Instruction, Pred, Reg,
                                    Sreg, unit_class)


class TestOperands:
    def test_reg_repr(self):
        assert repr(Reg(3)) == "r3"

    def test_pred_repr(self):
        assert repr(Pred(1)) == "p1"

    def test_imm_holds_value(self):
        assert Imm(2.5).value == 2.5

    def test_sreg_valid_names(self):
        for name in ("tid", "ctaid", "ntid", "nctaid", "laneid",
                     "warpid", "gtid"):
            assert Sreg(name).name == name

    def test_sreg_rejects_unknown(self):
        with pytest.raises(ValueError):
            Sreg("blockdim_y")

    def test_operands_hashable(self):
        assert len({Reg(1), Reg(1), Reg(2)}) == 2


class TestUnitClass:
    @pytest.mark.parametrize("op,unit", [
        ("IADD", "int"), ("IMAD", "int"), ("SETP.LT", "int"),
        ("FADD", "fp"), ("FFMA", "fp"), ("FSETP.GE", "fp"),
        ("RCP", "sfu"), ("SIN", "sfu"), ("SQRT", "sfu"),
        ("LDG", "mem"), ("STS", "mem"), ("LDC", "mem"),
        ("BRA", "ctrl"), ("BAR", "ctrl"), ("EXIT", "ctrl"),
    ])
    def test_classification(self, op, unit):
        assert unit_class(op) == unit

    def test_every_op_classified(self):
        for op in ALL_OPS:
            assert unit_class(op) in ("int", "fp", "sfu", "mem", "ctrl")

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            unit_class("FROB")


class TestInstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("NOSUCH")

    def test_mem_space_inferred(self):
        assert Instruction("LDG", Reg(0), (Reg(1),)).mem_space == "global"
        assert Instruction("LDS", Reg(0), (Reg(1),)).mem_space == "shared"
        assert Instruction("LDC", Reg(0), (Reg(1),)).mem_space == "const"
        assert Instruction("STG", None, (Reg(1), Reg(2))).mem_space == "global"

    def test_load_store_flags(self):
        assert Instruction("LDG", Reg(0), (Reg(1),)).is_load
        assert not Instruction("LDG", Reg(0), (Reg(1),)).is_store
        assert Instruction("STS", None, (Reg(1), Reg(0))).is_store

    def test_branch_flag(self):
        assert Instruction("BRA", target=0).is_branch
        assert Instruction("JMP", target=0).is_branch
        assert not Instruction("BAR").is_branch

    def test_reads_regs_only_registers(self):
        inst = Instruction("IADD", Reg(0), (Reg(1), Imm(2.0)))
        assert inst.reads_regs == (1,)

    def test_writes_reg(self):
        assert Instruction("IADD", Reg(5), (Reg(1), Reg(2))).writes_reg == 5
        assert Instruction("STG", None, (Reg(1), Reg(2))).writes_reg is None

    def test_predicate_dst_is_not_reg_write(self):
        inst = Instruction("SETP.LT", Pred(0), (Reg(1), Imm(1.0)))
        assert inst.writes_reg is None

    def test_repr_with_guard(self):
        inst = Instruction("IADD", Reg(0), (Reg(1), Reg(2)),
                           guard=(Pred(0), False))
        assert "!p0" in repr(inst)
