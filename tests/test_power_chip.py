"""Tests for the chip representation against the paper's Table IV and V."""

import pytest

from repro.power import Chip, PowerNode
from repro.sim.config import gt240, gtx580


class TestTableIV:
    """Static power and area (the paper's simulated column)."""

    def test_gt240_static(self):
        assert Chip(gt240()).static_power_w() == pytest.approx(17.9, abs=0.3)

    def test_gt240_area(self):
        assert Chip(gt240()).area_mm2() == pytest.approx(105, abs=5)

    def test_gtx580_static(self):
        assert Chip(gtx580()).static_power_w() == pytest.approx(81.5, abs=1.5)

    def test_gtx580_area(self):
        # Paper: 306 mm^2 simulated; our substrate is within ~10%.
        assert Chip(gtx580()).area_mm2() == pytest.approx(306, rel=0.10)

    def test_peak_dynamic_plausible(self):
        # Peak dynamic far above any measured runtime dynamic, below
        # absurd levels.
        peak = Chip(gt240()).peak_dynamic_w()
        assert 50 < peak < 1000


class TestRuntimeEvaluation:
    def test_idle_activity_zero_dynamic_cores(self):
        chip = Chip(gt240())
        report = chip.evaluate(chip.idle_activity())
        cores = report.gpu.child("Cores")
        # Base power needs active cores; idle window has none.
        assert cores.child("Base Power").total_dynamic_w == 0.0
        assert cores.child("Execution Units").total_dynamic_w == 0.0

    def test_static_independent_of_activity(self, blackscholes_activity):
        chip = Chip(gt240())
        busy = chip.evaluate(blackscholes_activity)
        idle = chip.evaluate(chip.idle_activity())
        assert busy.chip_static_w == pytest.approx(idle.chip_static_w)

    def test_component_summary_keys(self):
        chip = Chip(gtx580())
        summary = chip.component_summary()
        assert "L2 Cache" in summary
        assert "Undiff. Core" in summary
        for stats in summary.values():
            assert stats["leakage_w"] >= 0
            assert stats["area_mm2"] >= 0


class TestTableV:
    """The blackscholes component breakdown on the GT240."""

    @pytest.fixture(scope="class")
    def report(self, blackscholes_result_gt240):
        return blackscholes_result_gt240.power

    def test_gpu_totals(self, report):
        assert report.chip_static_w == pytest.approx(17.934, rel=0.02)
        assert report.chip_dynamic_w == pytest.approx(19.207, rel=0.03)

    @pytest.mark.parametrize("component,static,dynamic", [
        ("NoC", 1.484, 1.229),
        ("Memory Controller", 0.497, 1.753),
        ("PCIe Controller", 0.539, 0.992),
    ])
    def test_uncore_rows(self, report, component, static, dynamic):
        node = report.gpu.child(component)
        assert node.total_static_w == pytest.approx(static, rel=0.05)
        assert node.total_dynamic_w == pytest.approx(dynamic, rel=0.08)

    def test_cores_dominate(self, report):
        cores = report.gpu.child("Cores")
        share = cores.total_w / report.gpu.total_w
        assert share == pytest.approx(0.822, abs=0.03)

    @pytest.mark.parametrize("component,static,dynamic", [
        ("Base Power", 0.0, 0.199),
        ("WCU", 0.042, 0.089),
        ("Register File", 0.112, 0.173),
        ("Execution Units", 0.0096, 0.556),
        ("LDSTU", 0.234, 0.014),
        ("Undiff. Core", 0.886, 0.0),
    ])
    def test_core_rows_per_core(self, report, component, static, dynamic):
        node = report.gpu.child("Cores").child(component)
        n = 12
        assert node.total_static_w / n == pytest.approx(static, abs=0.01)
        assert node.total_dynamic_w / n == pytest.approx(dynamic, abs=0.025)

    def test_dram_reported_separately(self, report):
        assert report.gpu.find("GDDR5 DRAM") is None
        assert report.dram.total_dynamic_w == pytest.approx(4.3, abs=1.0)

    def test_card_total(self, report):
        assert report.card_total_w == pytest.approx(
            report.chip_total_w + report.dram.total_dynamic_w)


class TestPowerNode:
    def test_totals_include_children(self):
        root = PowerNode("root", static_w=1.0)
        root.children.append(PowerNode("kid", static_w=2.0, dynamic_w=3.0))
        assert root.total_static_w == 3.0
        assert root.total_dynamic_w == 3.0
        assert root.total_w == 6.0

    def test_child_lookup(self):
        root = PowerNode("root")
        root.children.append(PowerNode("a"))
        assert root.child("a").name == "a"
        with pytest.raises(KeyError):
            root.child("b")

    def test_find_recursive(self):
        root = PowerNode("root")
        mid = PowerNode("mid")
        mid.children.append(PowerNode("leaf"))
        root.children.append(mid)
        assert root.find("leaf") is not None
        assert root.find("ghost") is None

    def test_walk_visits_all(self):
        root = PowerNode("root")
        root.children.append(PowerNode("a"))
        root.children.append(PowerNode("b"))
        assert len(list(root.walk())) == 3

    def test_format_contains_names(self):
        root = PowerNode("root", static_w=1.0)
        root.children.append(PowerNode("kid"))
        text = root.format()
        assert "root" in text and "kid" in text
