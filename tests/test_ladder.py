"""The fidelity ladder: surrogate backend, auto selection, provenance.

Covers the accuracy-ladder contract end to end: the surrogate's
determinism and calibration round-trip, ``backend="auto"`` resolving
by error budget (including escalation when the surrogate cannot
promise), digest invariance (budgets select, they never key), cache
provenance (per-backend stats, achieved-error backfill) and the
service/CLI surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro.backends import (AUTO_BACKEND, CalibrationStore, escalation_path,
                            get_backend, ladder, resolve_backend)
from repro.backends.base import BackendError
from repro.backends.surrogate import (calibrate_surrogate, clear_table_memo,
                                      config_key)
from repro.cli import main
from repro.core import GPUSimPow
from repro.request import SimRequest
from repro.runner import run_jobs
from repro.runner.cache import (ResultCache, base_request_key, job_key,
                                request_signature)
from repro.runner.job import SimJob
from repro.sim import gt240, gtx580
from tests.conftest import build_vecadd_launch

#: Small kernel set for calibration-from-scratch tests (cheap on GT240).
CALIB_KERNELS = ["vectorAdd", "matrixMul", "bfs1", "scalarProd",
                 "backprop1"]


@pytest.fixture()
def _fresh_memo():
    """Tests that swap calibration stores must not see memoized tables."""
    clear_table_memo()
    yield
    clear_table_memo()


# -- ladder shape -------------------------------------------------------------


class TestLadderShape:
    def test_rungs_ordered_by_tier_then_cost(self):
        rungs = ladder()
        keys = [(b.info.tier, b.info.relative_cost) for b in rungs]
        assert keys == sorted(keys)
        assert [b.name for b in rungs] == ["surrogate", "analytical",
                                           "parallel_cycle", "cycle",
                                           "functional_ref"]

    def test_escalation_path_is_auto_only_cheap_to_exact(self):
        names = [b.name for b in escalation_path()]
        assert names == ["surrogate", "analytical", "cycle"]
        assert names[-1] == "cycle"  # always ends exact

    def test_exact_rungs_promise_zero(self):
        for backend in ladder():
            if backend.info.capabilities.exact:
                assert backend.info.expected_error == 0.0


# -- auto resolution ----------------------------------------------------------


class TestAutoResolution:
    def test_budget_none_and_zero_resolve_to_cycle(self, gtx580_config,
                                                   launches):
        for budget in (None, 0.0):
            req = SimRequest(config=gtx580_config, kernel="BlackScholes",
                             launch=launches["BlackScholes"],
                             backend=AUTO_BACKEND, error_budget=budget)
            name, promised = resolve_backend(req)
            assert name == "cycle" and promised == 0.0

    def test_generous_budget_picks_surrogate(self, gtx580_config, launches):
        req = SimRequest(config=gtx580_config, kernel="BlackScholes",
                         launch=launches["BlackScholes"],
                         backend=AUTO_BACKEND, error_budget=0.10)
        name, promised = resolve_backend(req)
        assert name == "surrogate"
        assert 0.0 < promised <= 0.10

    def test_escalates_past_uncalibrated_surrogate(self, monkeypatch,
                                                   _fresh_memo,
                                                   gtx580_config, launches,
                                                   tmp_path):
        # No user table, no packaged table: the surrogate cannot
        # promise, so auto climbs to the analytical rung.
        import repro.backends.surrogate as surrogate
        monkeypatch.setattr(surrogate, "_PACKAGED_DIR",
                            tmp_path / "no_packaged_tables")
        req = SimRequest(config=gtx580_config, kernel="BlackScholes",
                         launch=launches["BlackScholes"],
                         backend=AUTO_BACKEND, error_budget=0.10)
        name, promised = resolve_backend(req)
        assert name == "analytical"
        assert promised == get_backend("analytical").info.expected_error

    def test_tight_budget_escalates_to_cycle(self, gtx580_config, launches):
        # 1% is below both estimators' promises on this suite.
        req = SimRequest(config=gtx580_config, kernel="BlackScholes",
                         launch=launches["BlackScholes"],
                         backend=AUTO_BACKEND, error_budget=0.01)
        name, promised = resolve_backend(req)
        assert name == "cycle" and promised == 0.0

    def test_explicit_backend_ignores_resolution(self, gtx580_config,
                                                 launches):
        req = SimRequest(config=gtx580_config, kernel="BlackScholes",
                         launch=launches["BlackScholes"],
                         backend="analytical")
        assert resolve_backend(req)[0] == "analytical"

    def test_error_budget_validation(self, gt240_config):
        launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
        with pytest.raises(ValueError):
            SimRequest(config=gt240_config, kernel="t", launch=launch,
                       backend=AUTO_BACKEND, error_budget=1.5)
        with pytest.raises(ValueError):
            SimRequest(config=gt240_config, kernel="t", launch=launch,
                       backend=AUTO_BACKEND, error_budget=-0.1)


# -- surrogate backend --------------------------------------------------------


class TestSurrogate:
    def test_deterministic(self, gtx580_config, launches):
        surrogate = get_backend("surrogate")
        launch = launches["BlackScholes"]
        a = surrogate.simulate(gtx580_config, launch)
        b = surrogate.simulate(gtx580_config, launch)
        assert a.cycles == b.cycles
        assert a.activity.to_dict() == b.activity.to_dict()

    def test_zero_execution(self, monkeypatch, gtx580_config, launches):
        # The whole point of tier 0: no simulated instruction anywhere.
        from repro.sim.gpu import GPU

        def boom(self, *args, **kwargs):
            raise AssertionError("surrogate must not run the simulator")

        monkeypatch.setattr(GPU, "run", boom)
        out = get_backend("surrogate").simulate(gtx580_config,
                                                launches["BlackScholes"])
        assert out.cycles > 0
        out.activity.validate()

    def test_activity_geometry_is_exact(self, gtx580_config, launches):
        launch = launches["pathfinder"]
        activity = get_backend("surrogate").simulate(
            gtx580_config, launch).activity
        # Geometry matches the cycle backend: one run's worth (repeat
        # is a measurement-session concept, not per-run activity).
        assert activity.threads_launched == \
            launch.grid.count * launch.block.count
        assert activity.blocks_launched == launch.grid.count

    def test_uncalibrated_config_raises(self, monkeypatch, _fresh_memo,
                                        gt240_config, launches, tmp_path):
        import repro.backends.surrogate as surrogate
        monkeypatch.setattr(surrogate, "_PACKAGED_DIR",
                            tmp_path / "no_packaged_tables")
        with pytest.raises(BackendError, match="calibration"):
            get_backend("surrogate").simulate(gt240_config,
                                              launches["vectorAdd"])


# -- calibration --------------------------------------------------------------


class TestCalibration:
    def test_round_trip_through_store(self, _fresh_memo, gt240_config):
        table = calibrate_surrogate(gt240_config, CALIB_KERNELS, jobs=1)
        assert len(table.entries) == len(CALIB_KERNELS)
        assert table.config_key == config_key(gt240_config)
        store = CalibrationStore()  # $REPRO_CALIB_DIR, per-test tmp
        path = store.save(table)
        assert path.is_file()
        clear_table_memo()
        loaded = store.load(gt240_config)
        assert loaded is not None
        assert loaded.key == table.key
        feats = get_backend("surrogate").features_for(
            gt240_config, build_vecadd_launch(n=64, block=64, grid=1)[0])
        rates_a, cycles_a, dist_a = table.predict(feats)
        rates_b, cycles_b, dist_b = loaded.predict(feats)
        assert (rates_a == rates_b).all()
        assert cycles_a == cycles_b and dist_a == dist_b

    def test_member_kernel_predicts_itself(self, _fresh_memo, gt240_config,
                                           launches):
        table = calibrate_surrogate(gt240_config, CALIB_KERNELS, jobs=1)
        CalibrationStore().save(table)
        cyc = get_backend("cycle").simulate(gt240_config,
                                            launches["matrixMul"])
        est = get_backend("surrogate").simulate(gt240_config,
                                                launches["matrixMul"])
        # Nearest neighbour of a calibration member is itself.
        assert est.cycles == pytest.approx(cyc.cycles, rel=1e-6)

    def test_stale_table_is_a_miss(self, _fresh_memo, gt240_config):
        table = calibrate_surrogate(gt240_config, CALIB_KERNELS[:3], jobs=1)
        store = CalibrationStore()
        path = store.save(table)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["surrogate_version"] = "0.0"
        path.write_text(json.dumps(data), encoding="utf-8")
        clear_table_memo()
        assert store._load_file(path) is None


# -- digests and cache --------------------------------------------------------


class TestDigests:
    def test_auto_budget_zero_keys_like_cycle(self, gt240_config):
        launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
        auto = SimJob(config=gt240_config, kernel="tiny_vecadd",
                      launch=launch, backend=AUTO_BACKEND, error_budget=0.0)
        cycle = SimJob(config=gt240_config, kernel="tiny_vecadd",
                       launch=launch, backend="cycle")
        assert request_signature(auto) == request_signature(cycle)

    def test_budget_never_in_digest(self, gtx580_config, launches):
        # Two different budgets that resolve to the same rung must key
        # identically: the budget selects, it is not simulation input.
        a = SimJob(config=gtx580_config, kernel="BlackScholes",
                   launch=launches["BlackScholes"], backend=AUTO_BACKEND,
                   error_budget=0.08)
        b = SimJob(config=gtx580_config, kernel="BlackScholes",
                   launch=launches["BlackScholes"], backend=AUTO_BACKEND,
                   error_budget=0.10)
        assert resolve_backend(a)[0] == resolve_backend(b)[0] == "surrogate"
        assert request_signature(a) == request_signature(b)

    def test_base_key_strips_backend(self, gtx580_config, launches):
        est = SimJob(config=gtx580_config, kernel="BlackScholes",
                     launch=launches["BlackScholes"], backend="surrogate")
        cyc = SimJob(config=gtx580_config, kernel="BlackScholes",
                     launch=launches["BlackScholes"], backend="cycle")
        assert base_request_key(est) == base_request_key(cyc)
        # A plain cycle job IS its own base: backfill can find it.
        assert base_request_key(cyc) == job_key(cyc)


class TestCacheProvenance:
    def test_pre_existing_cycle_entry_hits_auto_zero(self, gt240_config,
                                                     tmp_path):
        launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
        cache = ResultCache(tmp_path / "cache")
        cycle_job = SimJob(config=gt240_config, kernel="tiny_vecadd",
                           launch=launch, backend="cycle")
        out = get_backend("cycle").simulate(gt240_config, launch)
        cache.put(cycle_job, out.activity, out.cycles)
        auto_job = SimJob(config=gt240_config, kernel="tiny_vecadd",
                          launch=launch, backend=AUTO_BACKEND,
                          error_budget=0.0)
        hit, corrupt = cache.lookup(auto_job)
        assert not corrupt and hit is not None
        assert hit.backend_used == "cycle"
        assert hit.promised_error == 0.0
        assert hit.cycles == out.cycles

    def test_backfill_achieved_error(self, gtx580_config, launches,
                                     tmp_path):
        cache = ResultCache(tmp_path / "cache")
        launch = launches["BlackScholes"]
        est_job = SimJob(config=gtx580_config, kernel="BlackScholes",
                         launch=launch, backend=AUTO_BACKEND,
                         error_budget=0.10)
        est = get_backend("surrogate").simulate(gtx580_config, launch)
        cache.put(est_job, est.activity, est.cycles)
        hit, _ = cache.lookup(est_job)
        assert hit.backend_used == "surrogate"
        assert hit.promised_error is not None
        assert hit.achieved_error is None  # no exact twin yet
        assert list((tmp_path / "cache" / "links").glob("*.link"))

        cyc_job = SimJob(config=gtx580_config, kernel="BlackScholes",
                         launch=launch, backend="cycle")
        out = get_backend("cycle").simulate(gtx580_config, launch)
        cache.put(cyc_job, out.activity, out.cycles)

        hit, _ = cache.lookup(est_job)
        assert hit.achieved_error is not None
        assert hit.achieved_error < 0.25
        # Graded entries are unlinked: backfill is one-shot.
        assert not list((tmp_path / "cache" / "links").glob("*.link"))

    def test_stats_count_per_backend(self, gtx580_config, launches,
                                     tmp_path):
        cache = ResultCache(tmp_path / "cache")
        launch = launches["BlackScholes"]
        for backend in ("cycle", "surrogate"):
            out = get_backend(backend).simulate(gtx580_config, launch)
            job = SimJob(config=gtx580_config, kernel="BlackScholes",
                         launch=launch, backend=backend)
            cache.put(job, out.activity, out.cycles)
        assert cache.stats()["backends"] == {"cycle": 1, "surrogate": 1}

    def test_run_jobs_records_provenance(self, gtx580_config, launches):
        job = SimJob(config=gtx580_config, kernel="BlackScholes",
                     launch=launches["BlackScholes"],
                     backend=AUTO_BACKEND, error_budget=0.10)
        result = run_jobs([job], n_jobs=1, cache=None)[0]
        assert result.backend_used == "surrogate"
        assert result.promised_error == pytest.approx(
            resolve_backend(job)[1])


# -- facade -------------------------------------------------------------------


class TestFacade:
    def test_budget_zero_is_bit_identical_to_cycle(self, gt240_config):
        launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
        sim = GPUSimPow(gt240_config)
        exact = sim.run(launch)
        auto = sim.run(launch, backend=AUTO_BACKEND, error_budget=0.0)
        assert auto.backend == "cycle"
        assert auto.promised_error == 0.0
        assert auto.performance.cycles == exact.performance.cycles
        assert auto.activity.to_dict() == exact.activity.to_dict()

    def test_result_records_promise(self, gtx580_config, launches):
        result = GPUSimPow(gtx580_config).run(
            launches["BlackScholes"], backend=AUTO_BACKEND,
            error_budget=0.10)
        assert result.backend == "surrogate"
        assert 0.0 < result.promised_error <= 0.10
        payload = result.to_dict()
        assert payload["promised_error"] == result.promised_error


# -- service ------------------------------------------------------------------


class TestService:
    def test_submit_with_budget_reports_tier(self, gtx580_config):
        from tests.test_service import DaemonHarness
        harness = DaemonHarness().start()
        try:
            req = SimRequest(config=gtx580_config, kernel="BlackScholes",
                             backend=AUTO_BACKEND, error_budget=0.10)
            res = harness.client.submit(req, wait=True)["result"]
            assert res["backend"] == "surrogate"
            assert res["tier"] == 0
            assert res["error_budget"] == 0.10
            assert 0.0 < res["promised_error"] <= 0.10
        finally:
            harness.stop()

    def test_submit_rejects_bad_budget(self, gtx580_config):
        from tests.test_service import DaemonHarness
        from repro.service import ServiceError
        harness = DaemonHarness().start()
        try:
            body = SimRequest(config=gtx580_config, kernel="BlackScholes",
                              backend=AUTO_BACKEND,
                              error_budget=0.10).to_dict()
            body["error_budget"] = 3.0
            with pytest.raises(ServiceError):
                harness.client.submit(body, wait=True)
        finally:
            harness.stop()


# -- CLI ----------------------------------------------------------------------


class TestCLI:
    def test_backends_subcommand(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("surrogate", "analytical", "parallel_cycle", "cycle",
                     "functional_ref"):
            assert name in out
        assert "exact" in out and "auto" in out

    def test_version_includes_ladder(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "fidelity ladder" in out and "surrogate" in out

    def test_run_auto_with_budget(self, capsys):
        assert main(["run", "BlackScholes", "--gpu", "GTX580",
                     "--backend", "auto", "--error-budget", "0.10",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "auto -> surrogate backend" in out
        assert "promised error" in out

    def test_run_auto_budget_is_zero_execution(self, monkeypatch, capsys):
        from repro.sim.gpu import GPU

        def boom(self, *args, **kwargs):
            raise AssertionError("budgeted run must not simulate")

        monkeypatch.setattr(GPU, "run", boom)
        assert main(["run", "BlackScholes", "--gpu", "GTX580",
                     "--backend", "auto", "--error-budget", "0.10",
                     "--no-cache"]) == 0

    def test_error_budget_requires_auto(self, capsys):
        assert main(["run", "BlackScholes", "--gpu", "GTX580",
                     "--error-budget", "0.10"]) == 2
        err = capsys.readouterr().err
        assert "--backend auto" in err

    def test_cache_stats_lists_backends(self, capsys):
        assert main(["run", "BlackScholes", "--gpu", "GTX580",
                     "--backend", "auto", "--error-budget", "0.10"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "backend surrogate: 1 entry" in out
