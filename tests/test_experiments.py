"""Tests for the experiment drivers (tables and figures)."""

import pytest

from repro.experiments import (ALL_EXPERIMENTS, exp_ablations, exp_fig4,
                               exp_microbench, exp_table2, exp_table4,
                               exp_table5)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {"table1", "table2", "table3",
                                        "table4", "table5", "fig4", "fig6",
                                        "microbench", "statmodel",
                                        "divergence", "ablations",
                                        "powertrace", "backends",
                                        "analysis", "fleet", "fuzz"}

    def test_every_experiment_has_interface(self):
        for module in ALL_EXPERIMENTS.values():
            assert hasattr(module, "run")
            assert hasattr(module, "EXPERIMENT")
            # The deprecated per-module main() aliases are gone.
            assert not hasattr(module, "main")

    def test_module_map_matches_experiment_registry(self):
        from repro.experiments import all_experiments
        assert set(all_experiments()) == set(ALL_EXPERIMENTS)
        for name, module in ALL_EXPERIMENTS.items():
            assert module.EXPERIMENT is all_experiments()[name]
            assert module.EXPERIMENT.name == name
            assert module.EXPERIMENT.description

    def test_module_runner_regenerates_artifact(self, capsys):
        """`python -m repro.experiments table2` path still works."""
        from repro.experiments import get_experiment
        get_experiment("table2").run(echo=True)
        assert "GT240" in capsys.readouterr().out


class TestTable1:
    def test_matches_paper(self):
        from repro.experiments import exp_table1
        rows = {r["name"]: r for r in exp_table1.run()}
        for name, (count, origin) in exp_table1.PAPER_TABLE1.items():
            assert rows[name]["n_kernels"] == count, name
            assert rows[name]["origin"] == origin, name

    def test_nineteen_kernels_total(self):
        from repro.experiments import exp_table1
        assert sum(r["n_kernels"] for r in exp_table1.run()) == 19

    def test_format(self):
        from repro.experiments import exp_table1
        text = exp_table1.format_table(exp_table1.run())
        assert "Rodinia" in text and "CUDA SDK" in text


class TestTable3:
    def test_rows_cover_both_sides(self):
        from repro.experiments import exp_table3
        rows = exp_table3.run()
        assert "Performance simulator" in rows
        assert "GPGPU-Sim" in rows["Performance simulator"]["simulation"]
        assert "McPAT" in rows["Power model"]["simulation"]

    def test_format(self):
        from repro.experiments import exp_table3
        text = exp_table3.format_table(exp_table3.run())
        assert "Measurement" in text and "Simulation" in text


class TestTable2:
    def test_matches_paper(self):
        rows = exp_table2.run()
        for gpu, expected in exp_table2.PAPER_TABLE2.items():
            for feature, value in expected.items():
                assert rows[gpu][feature] == value, (gpu, feature)

    def test_format(self):
        text = exp_table2.format_table(exp_table2.run())
        assert "GT240" in text and "GTX580" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return exp_table4.run()

    def test_simulated_static_matches_paper(self, rows):
        assert rows["GT240"].sim_static_w == pytest.approx(17.9, abs=0.3)
        assert rows["GTX580"].sim_static_w == pytest.approx(81.5, abs=1.5)

    def test_real_static_close_to_simulated(self, rows):
        """The paper's key Table IV observation."""
        for row in rows.values():
            assert row.sim_static_w == pytest.approx(row.real_static_w,
                                                     rel=0.07)

    def test_simulated_area_below_real(self, rows):
        """Paper: estimated chip area is smaller than the actual area
        (unmodeled components)."""
        for row in rows.values():
            assert row.sim_area_mm2 < row.real_area_mm2

    def test_format(self, rows):
        text = exp_table4.format_table(rows)
        assert "Static" in text and "Area" in text


class TestTable5:
    @pytest.fixture(scope="class")
    def table(self):
        return exp_table5.run()

    def test_gpu_rows_match_paper(self, table):
        for name, (ps, pd) in exp_table5.PAPER_GPU_LEVEL.items():
            s, d = table.gpu_level[name]
            assert s == pytest.approx(ps, rel=0.05), name
            assert d == pytest.approx(pd, rel=0.08), name

    def test_core_rows_match_paper(self, table):
        for name, (ps, pd) in exp_table5.PAPER_CORE_LEVEL.items():
            s, d = table.core_level[name]
            assert s == pytest.approx(ps, abs=0.012), name
            assert d == pytest.approx(pd, abs=0.03), name

    def test_cores_share_about_82_percent(self, table):
        total = sum(table.gpu_level["Overall"])
        cores = sum(table.gpu_level["Cores"])
        assert cores / total == pytest.approx(0.822, abs=0.02)

    def test_dram_footnote(self, table):
        assert table.dram_w == pytest.approx(exp_table5.PAPER_DRAM_W, abs=1.0)

    def test_ordering_of_core_consumers(self, table):
        """Exec units > register file > WCU in dynamic power; undiff is
        the largest static slice -- the paper's qualitative reading."""
        d = {k: v[1] for k, v in table.core_level.items()}
        s = {k: v[0] for k, v in table.core_level.items()}
        assert d["Execution Units"] > d["Register File"] > d["WCU"]
        assert s["Undiff. Core"] == max(v for k, v in s.items()
                                        if k != "Overall")


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_fig4.run()

    def test_twelve_plateaus(self, result):
        assert len(result.points) == 12

    def test_monotone(self, result):
        powers = [p for _, p in result.points]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_cluster_step_near_paper(self, result):
        assert result.cluster_step_w == pytest.approx(
            exp_fig4.PAPER_CLUSTER_STEP_W, rel=0.15)

    def test_scheduler_near_paper(self, result):
        assert result.scheduler_w == pytest.approx(
            exp_fig4.PAPER_SCHEDULER_W, rel=0.15)

    def test_steps_property(self, result):
        assert len(result.steps) == 11


class TestMicrobenchExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return exp_microbench.run()

    def test_int_near_40(self, result):
        assert result.int_pj == pytest.approx(40, abs=4)

    def test_fp_near_75(self, result):
        assert result.fp_pj == pytest.approx(75, abs=6)

    def test_format_mentions_nvidia(self, result):
        assert "NVIDIA" in exp_microbench.format_table(result)


class TestAblations:
    def test_coalescing_off_slower(self):
        on, off = exp_ablations.coalescing_ablation()
        assert off.cycles > on.cycles
        assert off.energy_mj > on.energy_mj

    def test_scoreboard_faster(self):
        barrel, sb = exp_ablations.scoreboard_ablation()
        assert sb.cycles < barrel.cycles

    def test_more_banks_more_power(self):
        points = exp_ablations.regfile_ablation()
        assert points[-1].chip_dynamic_w > points[0].chip_dynamic_w
        # Timing unaffected: this knob only changes the power side here.
        assert points[0].cycles == points[-1].cycles

    def test_node_scaling_monotone(self):
        points = exp_ablations.node_scaling()
        statics = [p.static_w for p in points]
        areas = [p.area_mm2 for p in points]
        assert statics == sorted(statics, reverse=True)
        assert areas == sorted(areas, reverse=True)
