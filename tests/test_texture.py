"""Tests for the texture caching subsystem extension.

Section III-C4 of the paper: "In a future variant of the model, the
LDSTU will contain the texture caching subsystem, i.e. texture caches
and texture mapping units, as well."  This reproduction implements that
variant behind the ``tex_cache_size`` configuration knob.
"""

import numpy as np
import pytest

from repro import GPUSimPow
from repro.isa import Dim3, KernelBuilder, KernelLaunch, Sreg
from repro.sim import gt240, simulate

TEX_CFG = gt240().scaled(tex_cache_size=8 * 1024)

IMG = 64  # square image


def blur_kernel():
    """3-tap horizontal blur sampled through the texture path."""
    kb = KernelBuilder("texblur")
    gid, x, y, addr, left, mid, right, acc = kb.regs(8)
    kb.mov(gid, Sreg("gtid"))
    kb.imod(x, gid, IMG)
    kb.idiv(y, gid, IMG)
    kb.isub(addr, x, 1)
    kb.imax(addr, addr, 0)
    kb.imad(addr, y, IMG, addr)
    kb.ldt(left, addr)
    kb.ldt(mid, gid)
    kb.iadd(addr, x, 1)
    kb.imin(addr, addr, IMG - 1)
    kb.imad(addr, y, IMG, addr)
    kb.ldt(right, addr)
    kb.fadd(acc, left, right)
    kb.fadd(acc, acc, mid)
    kb.fmul(acc, acc, 1.0 / 3.0)
    kb.stg(acc, gid, offset=IMG * IMG)
    kb.exit()
    return kb.build()


def blur_launch():
    rng = np.random.default_rng(4)
    img = rng.uniform(0, 1, IMG * IMG)
    return KernelLaunch(blur_kernel(), Dim3(IMG * IMG // 256), Dim3(256),
                        globals_init={0: img},
                        gmem_words=2 * IMG * IMG), img


def blur_reference(img):
    m = img.reshape(IMG, IMG)
    left = np.hstack([m[:, :1], m[:, :-1]])
    right = np.hstack([m[:, 1:], m[:, -1:]])
    return ((left + m + right) / 3.0).ravel()


class TestFunctional:
    def test_blur_matches_reference(self):
        launch, img = blur_launch()
        out = simulate(TEX_CFG, launch)
        got = out.gmem[IMG * IMG:2 * IMG * IMG]
        assert np.allclose(got, blur_reference(img))

    def test_texture_fetch_without_cache_raises(self):
        launch, _ = blur_launch()
        with pytest.raises(RuntimeError, match="texture"):
            simulate(gt240(), launch)


class TestActivity:
    @pytest.fixture(scope="class")
    def activity(self):
        launch, _ = blur_launch()
        return simulate(TEX_CFG, launch).activity

    def test_requests_counted(self, activity):
        # 3 fetches per thread.
        assert activity.tex_requests == 3 * IMG * IMG

    def test_cache_captures_2d_locality(self, activity):
        # Overlapping 3-tap windows: far fewer line accesses than
        # requests, and high hit rate on the reuse.
        assert activity.tex_accesses < activity.tex_requests / 2
        assert activity.tex_misses < 0.3 * activity.tex_accesses

    def test_texture_avoids_coalescer(self, activity):
        # Only the output stores pass through the coalescer.
        assert activity.coalescer_accesses == IMG * IMG / 32


class TestPower:
    def test_tex_cache_in_power_model(self):
        launch, _ = blur_launch()
        result = GPUSimPow(TEX_CFG).run(launch)
        assert result.chip_dynamic_w > 0
        from repro.power.components.ldst import LDSTPower
        from repro.power.tech import tech_node
        comp = LDSTPower(TEX_CFG, tech_node(40))
        assert "tex_cache" in comp.circuits

    def test_tex_cache_adds_leakage(self):
        from repro.power import Chip
        base = Chip(gt240()).static_power_w()
        with_tex = Chip(TEX_CFG).static_power_w()
        assert with_tex > base

    def test_baseline_configs_unchanged(self):
        """Adding the extension must not disturb the Table IV/V
        calibration: the presets ship with the texture path off."""
        assert gt240().tex_cache_size == 0
        from repro.power import Chip
        assert Chip(gt240()).static_power_w() == pytest.approx(17.93,
                                                               abs=0.05)
