"""Tests for the derived efficiency/utilization metrics."""

import pytest

from repro import GPUSimPow, gt240
from repro.core.metrics import (EfficiencyMetrics, UtilizationMetrics,
                                compare_energy)


@pytest.fixture(scope="module")
def results(launches):
    sim = GPUSimPow(gt240())
    return {name: sim.run(launches[name])
            for name in ("BlackScholes", "vectorAdd", "matrixMul")}


class TestEfficiencyMetrics:
    def test_energy_consistent(self, results):
        m = EfficiencyMetrics.from_result(results["BlackScholes"])
        assert m.energy_j == pytest.approx(m.power_w * m.runtime_s)
        assert m.edp_js == pytest.approx(m.energy_j * m.runtime_s)
        assert m.ed2p_js2 == pytest.approx(m.edp_js * m.runtime_s)

    def test_energy_per_instruction_plausible(self, results):
        m = EfficiencyMetrics.from_result(results["BlackScholes"])
        # A warp instruction costs nanojoules on a 40 nm GPU.
        assert 1e-10 < m.energy_per_instruction_j < 1e-6

    def test_compute_kernel_better_gflops_per_watt(self, results):
        bs = EfficiencyMetrics.from_result(results["BlackScholes"])
        va = EfficiencyMetrics.from_result(results["vectorAdd"])
        assert bs.gflops_per_watt > va.gflops_per_watt

    def test_compare_energy_sorted(self, results):
        table = compare_energy(results.values())
        lines = table.splitlines()[1:]
        energies = [float(line.split()[4]) for line in lines]
        assert energies == sorted(energies)
        assert "GFLOPS/W" in table.splitlines()[0]


class TestUtilizationMetrics:
    def test_rates_bounded(self, results):
        for result in results.values():
            u = UtilizationMetrics.from_result(result)
            for name in ("core_occupancy", "l1_hit_rate", "const_hit_rate",
                         "l2_hit_rate", "divergence_rate"):
                value = getattr(u, name)
                assert 0.0 <= value <= 1.0, (result.kernel_name, name)

    def test_vectoradd_fully_coalesced(self, results):
        u = UtilizationMetrics.from_result(results["vectorAdd"])
        assert u.coalescing_efficiency == pytest.approx(32.0)

    def test_blackscholes_const_cache_hits(self, results):
        u = UtilizationMetrics.from_result(results["BlackScholes"])
        assert u.const_hit_rate > 0.9

    def test_straightline_kernels_no_divergence(self, results):
        u = UtilizationMetrics.from_result(results["vectorAdd"])
        assert u.divergence_rate == 0.0

    def test_ipc_matches_output(self, results):
        r = results["matrixMul"]
        u = UtilizationMetrics.from_result(r)
        assert u.ipc == pytest.approx(r.performance.ipc, rel=1e-6)


class TestDivergenceExperiment:
    @pytest.fixture(scope="class")
    def points(self):
        from repro.experiments import exp_divergence
        return exp_divergence.run()

    def test_three_variants(self, points):
        assert len(points) == 3

    def test_divergence_counted_only_in_divergent_variants(self, points):
        uniform, two_way, four_way = points
        assert uniform.divergent_branches == 0
        assert two_way.divergent_branches > 0
        assert four_way.divergent_branches > two_way.divergent_branches

    def test_serialisation_stretches_runtime(self, points):
        uniform, two_way, four_way = points
        assert four_way.cycles > two_way.cycles

    def test_divergence_starves_execution_units(self, points):
        uniform, two_way, four_way = points
        assert (four_way.unit_dynamic_w["Execution Units"]
                < uniform.unit_dynamic_w["Execution Units"])

    def test_four_way_costs_most_energy(self, points):
        assert points[2].energy_uj == max(p.energy_uj for p in points)
