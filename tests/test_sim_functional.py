"""Unit and property tests for functional (value) execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Imm, Instruction, Pred, Reg, Sreg
from repro.sim.functional import (WarpContext, branch_taken_mask,
                                  execute_alu, memory_addresses)

WARP = 32


def make_ctx(n_regs=8, n_preds=2):
    specials = {"tid": np.arange(WARP, dtype=np.float64)}
    return WarpContext(n_regs, n_preds, specials, WARP)


def run_op(op, *src_values, dst=0):
    ctx = make_ctx()
    srcs = []
    for i, vals in enumerate(src_values, start=1):
        ctx.regs[i] = np.asarray(vals, dtype=np.float64)
        srcs.append(Reg(i))
    inst = Instruction(op, Reg(dst), tuple(srcs))
    execute_alu(inst, ctx, np.ones(WARP, dtype=bool))
    return ctx.regs[dst]


def lanes(value):
    return np.full(WARP, value, dtype=np.float64)


class TestIntegerOps:
    def test_iadd(self):
        assert run_op("IADD", lanes(3), lanes(4))[0] == 7

    def test_isub_negative(self):
        assert run_op("ISUB", lanes(3), lanes(5))[0] == -2

    def test_imul_wraps_32bit(self):
        out = run_op("IMUL", lanes(0x10000), lanes(0x10000))
        assert out[0] == 0.0  # 2^32 mod 2^32

    def test_imad(self):
        assert run_op("IMAD", lanes(3), lanes(4), lanes(5))[0] == 17

    def test_idiv_truncates(self):
        assert run_op("IDIV", lanes(7), lanes(2))[0] == 3

    def test_idiv_by_zero_is_zero(self):
        assert run_op("IDIV", lanes(7), lanes(0))[0] == 0

    def test_imod(self):
        assert run_op("IMOD", lanes(7), lanes(3))[0] == 1

    def test_bitwise(self):
        assert run_op("AND", lanes(0b1100), lanes(0b1010))[0] == 0b1000
        assert run_op("OR", lanes(0b1100), lanes(0b1010))[0] == 0b1110
        assert run_op("XOR", lanes(0b1100), lanes(0b1010))[0] == 0b0110

    def test_shifts(self):
        assert run_op("SHL", lanes(1), lanes(4))[0] == 16
        assert run_op("SHR", lanes(16), lanes(4))[0] == 1

    def test_minmax_abs(self):
        assert run_op("IMIN", lanes(-3), lanes(2))[0] == -3
        assert run_op("IMAX", lanes(-3), lanes(2))[0] == 2
        assert run_op("IABS", lanes(-3))[0] == 3

    def test_f2i_truncates(self):
        assert run_op("F2I", lanes(2.9))[0] == 2
        assert run_op("F2I", lanes(-2.9))[0] == -2


class TestFloatOps:
    def test_fadd_fsub_fmul(self):
        assert run_op("FADD", lanes(1.5), lanes(2.25))[0] == 3.75
        assert run_op("FSUB", lanes(1.5), lanes(2.25))[0] == -0.75
        assert run_op("FMUL", lanes(1.5), lanes(2.0))[0] == 3.0

    def test_ffma(self):
        assert run_op("FFMA", lanes(2.0), lanes(3.0), lanes(1.0))[0] == 7.0

    def test_fneg_fabs(self):
        assert run_op("FNEG", lanes(2.0))[0] == -2.0
        assert run_op("FABS", lanes(-2.0))[0] == 2.0


class TestSFUOps:
    def test_rcp(self):
        assert run_op("RCP", lanes(4.0))[0] == pytest.approx(0.25)

    def test_rcp_zero_saturates(self):
        out = run_op("RCP", lanes(0.0))
        assert np.isfinite(out).all()

    def test_sqrt_rsqrt(self):
        assert run_op("SQRT", lanes(9.0))[0] == 3.0
        assert run_op("RSQRT", lanes(4.0))[0] == pytest.approx(0.5)

    def test_sqrt_negative_no_nan(self):
        out = run_op("SQRT", lanes(-1.0))
        assert np.isfinite(out).all()

    def test_trig(self):
        assert run_op("SIN", lanes(0.0))[0] == 0.0
        assert run_op("COS", lanes(0.0))[0] == 1.0

    def test_exp2_log2(self):
        assert run_op("EXP2", lanes(3.0))[0] == 8.0
        assert run_op("LOG2", lanes(8.0))[0] == 3.0

    def test_log2_nonpositive_finite(self):
        assert np.isfinite(run_op("LOG2", lanes(-1.0))).all()

    def test_fdiv(self):
        assert run_op("FDIV", lanes(1.0), lanes(4.0))[0] == 0.25


class TestPredication:
    def test_setp_writes_predicate(self):
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        inst = Instruction("SETP.LT", Pred(0), (Reg(1), Imm(16.0)))
        execute_alu(inst, ctx, np.ones(WARP, dtype=bool))
        assert ctx.preds[0][:16].all() and not ctx.preds[0][16:].any()

    def test_setp_respects_mask(self):
        ctx = make_ctx()
        ctx.preds[0][:] = False
        ctx.regs[1] = lanes(0.0)
        half = np.zeros(WARP, dtype=bool)
        half[:16] = True
        inst = Instruction("SETP.EQ", Pred(0), (Reg(1), Imm(0.0)))
        execute_alu(inst, ctx, half)
        assert ctx.preds[0][:16].all() and not ctx.preds[0][16:].any()

    def test_selp(self):
        ctx = make_ctx()
        ctx.regs[1] = lanes(1.0)
        ctx.regs[2] = lanes(2.0)
        ctx.preds[0][::2] = True
        inst = Instruction("SELP", Reg(0), (Reg(1), Reg(2)))
        inst.sel_pred = Pred(0)
        execute_alu(inst, ctx, np.ones(WARP, dtype=bool))
        assert ctx.regs[0][0] == 1.0 and ctx.regs[0][1] == 2.0

    def test_masked_lanes_unchanged(self):
        ctx = make_ctx()
        ctx.regs[0] = lanes(99.0)
        ctx.regs[1] = lanes(1.0)
        inst = Instruction("MOV", Reg(0), (Reg(1),))
        execute_alu(inst, ctx, np.zeros(WARP, dtype=bool))
        assert (ctx.regs[0] == 99.0).all()

    def test_guard_mask_senses(self):
        ctx = make_ctx()
        ctx.preds[0][:8] = True
        active = np.ones(WARP, dtype=bool)
        inst_t = Instruction("NOP", guard=(Pred(0), True))
        inst_f = Instruction("NOP", guard=(Pred(0), False))
        assert ctx.guard_mask(inst_t, active).sum() == 8
        assert ctx.guard_mask(inst_f, active).sum() == 24


class TestBranchAndMemory:
    def test_branch_taken_mask_unguarded(self):
        ctx = make_ctx()
        active = np.ones(WARP, dtype=bool)
        inst = Instruction("BRA", target=0)
        assert branch_taken_mask(inst, ctx, active).all()

    def test_branch_taken_mask_guarded(self):
        ctx = make_ctx()
        ctx.preds[0][:4] = True
        active = np.ones(WARP, dtype=bool)
        inst = Instruction("BRA", target=0, guard=(Pred(0), True))
        assert branch_taken_mask(inst, ctx, active).sum() == 4

    def test_memory_addresses_offset(self):
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        inst = Instruction("LDG", Reg(0), (Reg(1),), offset=100)
        mask = np.ones(WARP, dtype=bool)
        addrs = memory_addresses(inst, ctx, mask)
        assert addrs[0] == 100 and addrs[-1] == 131

    def test_memory_addresses_masked(self):
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        inst = Instruction("LDG", Reg(0), (Reg(1),))
        mask = np.zeros(WARP, dtype=bool)
        mask[5] = True
        addrs = memory_addresses(inst, ctx, mask)
        assert list(addrs) == [5]

    def test_sreg_read(self):
        ctx = make_ctx()
        inst = Instruction("MOV", Reg(0), (Sreg("tid"),))
        execute_alu(inst, ctx, np.ones(WARP, dtype=bool))
        assert ctx.regs[0][7] == 7


int32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestIntSemanticsProperties:
    @given(a=int32, b=int32)
    @settings(max_examples=80, deadline=None)
    def test_iadd_matches_python(self, a, b):
        assert run_op("IADD", lanes(a), lanes(b))[0] == a + b

    @given(a=st.integers(0, 2**31 - 1), s=st.integers(0, 31))
    @settings(max_examples=80, deadline=None)
    def test_shr_matches_python(self, a, s):
        assert run_op("SHR", lanes(a), lanes(s))[0] == a >> s

    @given(a=st.integers(0, 2**31 - 1), b=st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_xor_matches_python(self, a, b):
        assert run_op("XOR", lanes(a), lanes(b))[0] == a ^ b

    @given(a=int32, b=st.integers(1, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_imod_nonnegative_divisor(self, a, b):
        assert run_op("IMOD", lanes(a), lanes(b))[0] == a % b
