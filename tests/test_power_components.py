"""Unit tests for the architecture-tier power components."""

import pytest

from repro.power.components.basepower import (ClusterBasePower, CoreBasePower,
                                              UndiffCorePower)
from repro.power.components.dram import DRAMPower
from repro.power.components.exec_units import ExecutionUnitsPower
from repro.power.components.ldst import LDSTPower
from repro.power.components.regfile import RegisterFilePower
from repro.power.components.uncore import (L2Power, MemoryControllerPower,
                                           NoCPower, PCIePower)
from repro.power.components.wcu import WCUPower
from repro.power.tech import tech_node
from repro.sim.activity import ActivityReport
from repro.sim.config import gt240, gtx580

T40 = tech_node(40)


def idle_activity(runtime_s=1e-3):
    act = ActivityReport()
    act.runtime_s = runtime_s
    act.shader_cycles = runtime_s * gt240().shader_clock_hz
    return act


def active_report(**counts):
    act = idle_activity()
    act.active_cores = 12
    act.active_clusters = 4
    act.blocks_launched = 12
    for name, value in counts.items():
        setattr(act, name, value)
    return act


class TestExecutionUnits:
    def test_idle_zero_dynamic(self):
        comp = ExecutionUnitsPower(gt240(), T40)
        assert comp.switching_w(idle_activity()) == 0.0

    def test_energy_anchors(self):
        comp = ExecutionUnitsPower(gt240(), T40)
        assert comp.e_int == pytest.approx(40e-12)
        assert comp.e_fp == pytest.approx(75e-12)

    def test_dynamic_proportional_to_ops(self):
        comp = ExecutionUnitsPower(gt240(), T40)
        p1 = comp.switching_w(active_report(fp_ops=1e6))
        p2 = comp.switching_w(active_report(fp_ops=2e6))
        assert p2 == pytest.approx(2 * p1)

    def test_fp_costs_more_than_int(self):
        comp = ExecutionUnitsPower(gt240(), T40)
        p_int = comp.switching_w(active_report(int_ops=1e6))
        p_fp = comp.switching_w(active_report(fp_ops=1e6))
        assert p_fp > p_int

    def test_table5_leakage(self):
        comp = ExecutionUnitsPower(gt240(), T40)
        per_core = comp.leakage_w() / 12
        assert per_core == pytest.approx(0.0096, rel=0.05)

    def test_peak_exceeds_any_runtime(self):
        comp = ExecutionUnitsPower(gt240(), T40)
        # busiest possible: every lane every cycle for the whole window
        cfg = gt240()
        cycles = idle_activity().shader_cycles
        act = active_report(
            fp_ops=cycles * cfg.n_fp_lanes * cfg.n_cores)
        assert comp.peak_dynamic_w() >= comp.switching_w(act) * 0.99


class TestWCUAndRF:
    def test_wcu_table5_leakage(self):
        comp = WCUPower(gt240(), T40)
        assert comp.leakage_w() / 12 == pytest.approx(0.042, rel=0.05)

    def test_rf_table5_leakage(self):
        comp = RegisterFilePower(gt240(), T40)
        assert comp.leakage_w() / 12 == pytest.approx(0.112, rel=0.05)

    def test_gtx580_scoreboard_present(self):
        with_sb = WCUPower(gtx580(), T40)
        assert "scoreboard" in with_sb.circuits
        without = WCUPower(gt240(), T40)
        assert "scoreboard" not in without.circuits

    def test_wcu_dynamic_from_issue_traffic(self):
        comp = WCUPower(gt240(), T40)
        act = active_report(wst_reads=2e6, wst_writes=1e6, decodes=1e6,
                            icache_reads=1e6, ibuffer_writes=1e6,
                            ibuffer_searches=1e6, fetch_scheduler_ops=1e6,
                            issue_scheduler_ops=1e6)
        assert comp.switching_w(act) > 0

    def test_rf_dynamic_scales_with_bank_traffic(self):
        comp = RegisterFilePower(gt240(), T40)
        a = active_report(rf_reads=1e6, rf_bank_accesses=8e6,
                          rf_xbar_transfers=8e6)
        b = active_report(rf_reads=2e6, rf_bank_accesses=16e6,
                          rf_xbar_transfers=16e6)
        assert comp.switching_w(b) == pytest.approx(2 * comp.switching_w(a))


class TestLDST:
    def test_table5_leakage(self):
        comp = LDSTPower(gt240(), T40)
        assert comp.leakage_w() / 12 == pytest.approx(0.234, rel=0.05)

    def test_bigger_smem_leaks_more(self):
        small = LDSTPower(gt240(), T40)
        big = LDSTPower(gt240().scaled(smem_size=48 * 1024), T40)
        assert big.leakage_w() > small.leakage_w()

    def test_smem_traffic_dynamic(self):
        comp = LDSTPower(gt240(), T40)
        act = active_report(smem_accesses=1e7, smem_xbar_transfers=1e7,
                            bank_conflict_checks=3e5)
        assert comp.switching_w(act) > 0


class TestUncore:
    def test_noc_static_anchor(self):
        comp = NoCPower(gt240(), T40)
        assert comp.leakage_w() == pytest.approx(1.484, rel=0.02)

    def test_mc_static_anchor(self):
        comp = MemoryControllerPower(gt240(), T40)
        assert comp.leakage_w() == pytest.approx(0.497, rel=0.02)

    def test_pcie_static_anchor(self):
        comp = PCIePower(gt240(), T40)
        assert comp.leakage_w() == pytest.approx(0.539, rel=0.02)

    def test_pcie_constant_while_active(self):
        comp = PCIePower(gt240(), T40)
        assert comp.switching_w(idle_activity()) > 0.8
        silent = ActivityReport()
        assert comp.switching_w(silent) == 0.0

    def test_noc_flits_add_power(self):
        comp = NoCPower(gt240(), T40)
        base = comp.switching_w(idle_activity())
        busy = comp.switching_w(active_report(noc_flits=1e8))
        assert busy > base

    def test_l2_only_for_l2_configs(self):
        comp = L2Power(gtx580(), T40)
        assert comp.leakage_w() > 0
        act = active_report(l2_reads=1e6, l2_writes=1e5, l2_misses=1e5)
        assert comp.switching_w(act) > 0


class TestBaseAndUndiff:
    def test_core_base_anchor(self):
        comp = CoreBasePower(gt240(), T40)
        assert comp.per_core_w == pytest.approx(0.199, rel=0.01)

    def test_core_base_counts_active_cores(self):
        comp = CoreBasePower(gt240(), T40)
        act = active_report()
        act.active_cores = 5
        assert comp.switching_w(act) == pytest.approx(5 * 0.199, rel=0.01)

    def test_cluster_anchor(self):
        comp = ClusterBasePower(gt240(), T40)
        assert comp.per_cluster_w == pytest.approx(0.692, rel=0.01)
        assert comp.scheduler_w == pytest.approx(3.34, rel=0.01)

    def test_undiff_anchor(self):
        comp = UndiffCorePower(gt240(), T40)
        assert comp.per_core_w == pytest.approx(0.886, rel=0.01)
        assert comp.switching_w(active_report()) == 0.0

    def test_undiff_scales_with_leakage_bin(self):
        hot = UndiffCorePower(gt240().scaled(leakage_bin=2.0), T40)
        assert hot.per_core_w == pytest.approx(2 * 0.886, rel=0.01)

    def test_wider_core_more_base_power(self):
        narrow = CoreBasePower(gt240(), T40)
        wide = CoreBasePower(gt240().scaled(n_fp_lanes=16, n_int_lanes=16),
                             T40)
        assert wide.per_core_w > narrow.per_core_w


class TestDRAM:
    def test_five_components(self):
        comp = DRAMPower(gt240(), T40)
        parts = comp.component_powers(active_report(
            dram_reads=1e5, dram_writes=1e4, dram_activates=1e4,
            dram_refreshes=128))
        assert set(parts) == {"background", "activate", "read_write",
                              "termination", "refresh"}
        assert all(v >= 0 for v in parts.values())
        assert parts["background"] > 0

    def test_idle_only_background(self):
        comp = DRAMPower(gt240(), T40)
        parts = comp.component_powers(idle_activity())
        assert parts["read_write"] == 0 and parts["activate"] == 0

    def test_device_count(self):
        assert DRAMPower(gt240(), T40).n_devices == 4       # 128-bit bus
        assert DRAMPower(gtx580(), T40).n_devices == 12     # 384-bit bus

    def test_peak_below_plausible_card_limit(self):
        comp = DRAMPower(gtx580(), T40)
        assert 5 < comp.peak_dynamic_w() < 80

    def test_node_reports_children(self):
        comp = DRAMPower(gt240(), T40)
        node = comp.node(active_report(dram_reads=1e5))
        assert len(node.children) == 5
