"""Tests for the issue-stall attribution counters."""

import pytest

from repro.sim import gt240, simulate
from repro.workloads import all_kernel_launches

REASONS = ("dependency", "unit_busy", "ldst_busy", "barrier", "empty")


class TestStallCounters:
    @pytest.fixture(scope="class")
    def activity(self, launches):
        return simulate(gt240(), launches["matrixMul"]).activity

    def test_counters_present_and_nonnegative(self, activity):
        for reason in REASONS:
            assert getattr(activity, f"stall_{reason}") >= 0

    def test_barrel_mode_dependency_dominated(self, activity):
        """Without a scoreboard every instruction blocks its warp until
        completion -- dependency stalls must dominate."""
        total = sum(getattr(activity, f"stall_{r}") for r in REASONS)
        assert total > 0
        assert activity.stall_dependency > 0.5 * total

    def test_barrier_stalls_only_with_barriers(self, launches):
        with_bar = simulate(gt240(), launches["scalarProd"]).activity
        without = simulate(gt240(), launches["vectorAdd"]).activity
        assert with_bar.stall_barrier > 0
        assert without.stall_barrier == 0

    def test_stalls_plus_busy_bounded_by_cycle_budget(self, activity):
        """A core is stepped at most once per cycle; busy plus attributed
        stall cycles cannot exceed the total core-cycle budget."""
        total_stalls = sum(getattr(activity, f"stall_{r}") for r in REASONS)
        budget = activity.shader_cycles * gt240().n_cores
        assert activity.core_busy_cycles + total_stalls <= budget * 1.01

    def test_scoreboard_reduces_dependency_share(self, launches):
        barrel = simulate(gt240(), launches["BlackScholes"]).activity
        sb = simulate(gt240().scaled(has_scoreboard=True),
                      launches["BlackScholes"]).activity

        def dep_share(act):
            total = sum(getattr(act, f"stall_{r}") for r in REASONS)
            return act.stall_dependency / total if total else 0.0

        # The scoreboard lets independent instructions of the same warp
        # proceed, shifting stalls from dependencies to busy units.
        assert dep_share(sb) < dep_share(barrel)
