"""Fault-path tests for the runner engine (ISSUE 4).

Every fault here is injected deterministically through the engine's
fault plan (:func:`repro.runner.set_fault_plan` / ``$REPRO_FAULT_PLAN``):
kill a pool worker mid-job, delay an attempt past its timeout, raise
inside an attempt, or corrupt a cache entry before lookup.  The
invariants under test:

* a SIGKILL'd worker never hangs ``run_jobs`` -- the job retries and
  the sweep completes, or fails fast with kind=``worker-crash``;
* timeouts kill exactly the over-budget attempt and retry it;
* retry exhaustion surfaces a :class:`JobFailure` with the full
  per-attempt history;
* repeated pool meltdown degrades to serial execution instead of
  aborting the sweep;
* corrupt cache entries degrade to misses and are re-stored;
* results are bit-identical with and without injected faults.
"""

import os
import time
import warnings

import pytest

from repro.runner import (AUTO, JobFailure, ResultCache, RunnerError, SimJob,
                          job_key, resolve_jobs, resolve_timeout, run_jobs,
                          set_default_cache, set_default_jobs,
                          set_default_timeout, set_fault_plan)
from repro.runner.engine import _fault_for, _resolve_fault_plan, _warned_env
from repro.sim import gt240
from tests.conftest import build_vecadd_launch


def tiny_jobs(n=2, **kw):
    """``n`` tiny vector-add jobs with distinct labels j0..j{n-1}."""
    launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
    return [SimJob(config=gt240(), launch=launch, tag=f"j{i}", **kw)
            for i in range(n)]


@pytest.fixture(autouse=True)
def clean_engine_state():
    """Isolate fault plans, runner defaults and one-time warnings."""
    yield
    set_fault_plan(None)
    set_default_jobs(None)
    set_default_cache(AUTO)
    set_default_timeout(None)
    _warned_env.clear()


@pytest.fixture(scope="module")
def clean_result():
    """One fault-free reference run of a tiny job (for bit-identity)."""
    job, = tiny_jobs(1)
    result, = run_jobs([job], n_jobs=1, cache=None)
    return result


def assert_bit_identical(result, reference):
    assert result.activity.as_dict() == reference.activity.as_dict()
    assert result.cycles == reference.cycles


class TestFaultPlan:
    def test_per_attempt_resolution(self):
        plan = {"a": ["kill", "ok", "delay:2"]}
        assert _fault_for(plan, "a", 1) == "kill"
        assert _fault_for(plan, "a", 2) is None
        assert _fault_for(plan, "a", 3) == "delay:2"
        assert _fault_for(plan, "a", 4) is None  # beyond the list
        assert _fault_for(plan, "b", 1) is None  # unlisted job

    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"x": ["exc"]}')
        assert _resolve_fault_plan() == {"x": ["exc"]}

    def test_set_fault_plan_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"x": ["exc"]}')
        set_fault_plan({"y": ["kill"]})
        assert _resolve_fault_plan() == {"y": ["kill"]}

    def test_invalid_env_plan_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "{not json")
        with pytest.warns(RuntimeWarning, match="REPRO_FAULT_PLAN"):
            assert _resolve_fault_plan() == {}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _resolve_fault_plan() == {}

    def test_unknown_action_fails_the_attempt(self):
        jobs = tiny_jobs(1)
        set_fault_plan({"j0": ["frobnicate"]})
        with pytest.raises(RunnerError) as exc:
            run_jobs(jobs, n_jobs=1, cache=None)
        assert "frobnicate" in str(exc.value)


class TestKilledWorkerRecovery:
    def test_sigkilled_worker_is_retried(self, clean_result):
        """The acceptance scenario: SIGKILL mid-job, no hang, retry,
        bit-identical completion -- under a 2-worker pool."""
        jobs = tiny_jobs(2)
        set_fault_plan({"j0": ["kill"]})
        results = run_jobs(jobs, n_jobs=2, cache=None, backoff_s=0.0)
        assert results[0].attempts == 2
        assert [f.kind for f in results[0].faults] == ["worker-crash"]
        assert results[1].attempts == 1 and results[1].faults == []
        for r in results:
            assert_bit_identical(r, clean_result)

    def test_crash_failure_carries_exit_code(self):
        jobs = tiny_jobs(2)
        set_fault_plan({"j0": ["kill", "kill", "kill"]})
        with pytest.raises(RunnerError) as exc:
            run_jobs(jobs, n_jobs=2, cache=None, retries=2, backoff_s=0.0)
        failure, = exc.value.failures
        assert failure.kind == "worker-crash"
        assert "-9" in failure.message  # SIGKILL exit code

    def test_progress_reports_failed_jobs(self):
        """Satellite: (done, total) watchers must converge even when
        jobs fail -- every job reports exactly once."""
        jobs = tiny_jobs(2)
        jobs[0] = SimJob(config=gt240(), kernel="noSuchKernel", tag="j0")
        seen = []
        with pytest.raises(RunnerError):
            run_jobs(jobs, n_jobs=2, cache=None,
                     progress=lambda d, t, o: seen.append((d, t, o)))
        assert [(d, t) for d, t, _ in seen] == [(1, 2), (2, 2)]
        kinds = {type(o).__name__ for _, _, o in seen}
        assert "JobFailure" in kinds  # the failed job reported too


class TestTimeouts:
    def test_pooled_timeout_kills_and_retries(self, clean_result):
        jobs = tiny_jobs(2)
        set_fault_plan({"j0": ["delay:30"]})
        start = time.monotonic()
        results = run_jobs(jobs, n_jobs=2, cache=None, timeout_s=2.0,
                           backoff_s=0.0)
        assert time.monotonic() - start < 20  # nowhere near the 30s sleep
        assert results[0].attempts == 2
        assert [f.kind for f in results[0].faults] == ["timeout"]
        assert_bit_identical(results[0], clean_result)

    def test_serial_timeout_is_posthoc(self, clean_result):
        """Serial attempts cannot be preempted; over-budget attempts
        are discarded after the fact and retried the same way."""
        jobs = tiny_jobs(1)
        set_fault_plan({"j0": ["delay:1.5"]})
        results = run_jobs(jobs, n_jobs=1, cache=None, timeout_s=1.0,
                           backoff_s=0.0)
        assert results[0].attempts == 2
        fault, = results[0].faults
        assert fault.kind == "timeout"
        assert fault.attempt_durations[0] > 1.0
        assert_bit_identical(results[0], clean_result)

    def test_job_level_timeout_overrides_default(self):
        jobs = tiny_jobs(1, timeout_s=1.0)
        set_fault_plan({"j0": ["delay:1.5"]})
        # The run-level budget (1h) would never fire; the job's does.
        results = run_jobs(jobs, n_jobs=1, cache=None, timeout_s=3600.0,
                           backoff_s=0.0)
        assert results[0].attempts == 2

    def test_timeout_exhaustion(self):
        jobs = tiny_jobs(1)
        set_fault_plan({"j0": ["delay:1.5", "delay:1.5"]})
        with pytest.raises(RunnerError) as exc:
            run_jobs(jobs, n_jobs=1, cache=None, timeout_s=1.0,
                     retries=1, backoff_s=0.0)
        failure, = exc.value.failures
        assert failure.kind == "timeout"
        assert failure.attempts == 2
        assert len(failure.attempt_durations) == 2

    def test_timeout_not_in_cache_key(self):
        plain, = tiny_jobs(1)
        budgeted, = tiny_jobs(1, timeout_s=5.0)
        assert job_key(plain) == job_key(budgeted)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            tiny_jobs(1, timeout_s=0.0)
        with pytest.raises(ValueError):
            resolve_timeout(-1.0)


class TestRetryExhaustion:
    def test_failure_carries_full_attempt_history(self):
        jobs = tiny_jobs(2)
        set_fault_plan({"j0": ["kill"] * 4})
        with pytest.raises(RunnerError) as exc:
            run_jobs(jobs, n_jobs=2, cache=None, retries=1, backoff_s=0.0)
        failure, = exc.value.failures
        assert failure.kind == "worker-crash"
        assert failure.attempts == 2  # 1 + retries
        assert len(failure.attempt_durations) == 2
        assert failure.label == "j0"

    def test_exceptions_are_not_retried(self):
        jobs = tiny_jobs(2)
        set_fault_plan({"j0": ["exc", "ok"]})  # attempt 2 would succeed
        with pytest.raises(RunnerError) as exc:
            run_jobs(jobs, n_jobs=2, cache=None, retries=3, backoff_s=0.0)
        failure, = exc.value.failures
        assert failure.kind == "exception"
        assert failure.attempts == 1
        assert "injected failure" in failure.traceback

    def test_exponential_backoff_spacing(self):
        jobs = tiny_jobs(1)
        set_fault_plan({"j0": ["exc"]})
        # Serial fail-fast still raises (plain-loop semantics).
        with pytest.raises(RunnerError):
            run_jobs(jobs, n_jobs=1, cache=None, backoff_s=0.0)


class TestSerialDegradation:
    def test_pool_meltdown_finishes_serially(self, clean_result):
        """Every pooled attempt of both jobs crashes; after the crash
        budget the engine must finish the sweep in-process instead of
        aborting (kill faults only apply to pool workers)."""
        jobs = tiny_jobs(2)
        set_fault_plan({"j0": ["kill"] * 8, "j1": ["kill"] * 8})
        results = run_jobs(jobs, n_jobs=2, cache=None, retries=6,
                           backoff_s=0.0)
        assert all(r.worker == -1 for r in results)  # finished in-process
        assert all(r.attempts > 1 for r in results)
        assert all(any(f.kind == "worker-crash" for f in r.faults)
                   for r in results)
        for r in results:
            assert_bit_identical(r, clean_result)

    def test_degraded_results_are_stored(self, tmp_path):
        jobs = tiny_jobs(2)
        cache = ResultCache(tmp_path)
        set_fault_plan({"j0": ["kill"] * 8, "j1": ["kill"] * 8})
        run_jobs(jobs, n_jobs=2, cache=cache, retries=6, backoff_s=0.0)
        assert cache.stores == 2
        set_fault_plan(None)
        warm = run_jobs(jobs, n_jobs=1, cache=cache)
        assert all(r.cached for r in warm)


class TestCacheCorruption:
    def test_truncated_entry_degrades_and_restores(self, tmp_path):
        jobs = tiny_jobs(1)
        cache = ResultCache(tmp_path)
        cold, = run_jobs(jobs, n_jobs=1, cache=cache)
        key = job_key(jobs[0])
        cache.path_for(key).write_text("{trunca", encoding="utf-8")
        fresh, = run_jobs(jobs, n_jobs=1, cache=cache)
        assert not fresh.cached
        assert [f.kind for f in fresh.faults] == ["cache-corrupt"]
        assert fresh.faults[0].attempts == 0  # before any attempt
        assert cache.corrupt == 1
        assert_bit_identical(fresh, cold)
        warm, = run_jobs(jobs, n_jobs=1, cache=cache)  # re-stored
        assert warm.cached
        assert_bit_identical(warm, cold)

    def test_corrupt_fault_action(self, tmp_path):
        jobs = tiny_jobs(1)
        cache = ResultCache(tmp_path)
        run_jobs(jobs, n_jobs=1, cache=cache)
        set_fault_plan({"j0": ["corrupt"]})
        fresh, = run_jobs(jobs, n_jobs=1, cache=cache)
        assert not fresh.cached
        assert [f.kind for f in fresh.faults] == ["cache-corrupt"]

    def test_lookup_distinguishes_miss_from_corrupt(self, tmp_path):
        jobs = tiny_jobs(1)
        cache = ResultCache(tmp_path)
        assert cache.lookup(jobs[0]) == (None, False)  # plain miss
        key = job_key(jobs[0])
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all", encoding="utf-8")
        hit, corrupt = cache.lookup(jobs[0], key=key)
        assert hit is None and corrupt
        assert not path.exists()  # broken file dropped


class TestOrphanedTempFiles:
    def plant(self, root, shard="ab", name="tmpdead123.tmp", age_s=0.0):
        shard_dir = root / shard
        shard_dir.mkdir(parents=True, exist_ok=True)
        orphan = shard_dir / name
        orphan.write_text("half-written entry", encoding="utf-8")
        if age_s:
            old = time.time() - age_s
            os.utime(orphan, (old, old))
        return orphan

    def test_stats_account_for_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        self.plant(cache.root)
        stats = cache.stats()
        assert stats["orphans"] == 1
        assert stats["orphan_bytes"] > 0
        assert stats["entries"] == 0  # orphans are not entries

    def test_clear_sweeps_orphans(self, tmp_path):
        jobs = tiny_jobs(1)
        cache = ResultCache(tmp_path)
        run_jobs(jobs, n_jobs=1, cache=cache)
        orphan = self.plant(cache.root)
        assert cache.clear() == 1  # one real entry
        assert not orphan.exists()
        assert cache.stats()["orphans"] == 0

    def test_construction_sweeps_only_old_orphans(self, tmp_path):
        fresh = self.plant(tmp_path, name="tmpfresh.tmp")
        stale = self.plant(tmp_path, name="tmpstale.tmp", age_s=7200.0)
        ResultCache(tmp_path)  # age-based sweep runs in the constructor
        assert fresh.exists()  # a live writer may still own this one
        assert not stale.exists()


class TestRunnerErrorGuard:
    def test_empty_failures_does_not_raise_indexerror(self):
        err = RunnerError([])
        assert err.failures == []
        assert "no recorded failures" in str(err)

    def test_legacy_tuple_failures_normalised(self):
        err = RunnerError([("lbl", "Traceback ...\nValueError: boom")])
        failure, = err.failures
        assert isinstance(failure, JobFailure)
        assert failure.kind == "exception"
        assert "ValueError: boom" in str(err)


class TestEnvResolution:
    def test_invalid_repro_jobs_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS.*banana"):
            assert resolve_jobs(None) == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call stays silent
            assert resolve_jobs(None) == 1

    def test_invalid_repro_job_timeout_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "soon")
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_TIMEOUT"):
            assert resolve_timeout(None) is None

    def test_nonpositive_env_timeout_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "-5")
        with pytest.warns(RuntimeWarning, match="REPRO_JOB_TIMEOUT"):
            assert resolve_timeout(None) is None

    def test_valid_env_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        assert resolve_timeout(None) == 12.5

    def test_configured_timeout_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        set_default_timeout(3.0)
        assert resolve_timeout(None) == 3.0
        assert resolve_timeout(7.0) == 7.0  # explicit arg wins


class TestFaultDeterminism:
    def test_bit_identical_with_and_without_faults(self, clean_result):
        """The acceptance invariant: cached, pooled, serial and
        fault-retried executions all produce identical numbers."""
        jobs = tiny_jobs(2)
        set_fault_plan({"j0": ["kill"], "j1": ["delay:30"]})
        faulted = run_jobs(jobs, n_jobs=2, cache=None, timeout_s=2.0,
                           backoff_s=0.0)
        set_fault_plan(None)
        plain = run_jobs(jobs, n_jobs=2, cache=None)
        for f, p in zip(faulted, plain):
            assert_bit_identical(f, p)
            assert_bit_identical(f, clean_result)

    def test_traced_job_survives_retry(self, tmp_path):
        """Windows must ship intact from a retried attempt and round-trip
        through the cache."""
        launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
        jobs = [SimJob(config=gt240(), launch=launch, tag=f"j{i}",
                       trace_interval=100.0) for i in range(2)]
        cache = ResultCache(tmp_path)
        set_fault_plan({"j0": ["kill"]})
        traced = run_jobs(jobs, n_jobs=2, cache=cache, backoff_s=0.0)
        assert traced[0].attempts == 2
        assert traced[0].windows
        set_fault_plan(None)
        warm = run_jobs(jobs, n_jobs=1, cache=cache)
        assert warm[0].cached
        assert len(warm[0].windows) == len(traced[0].windows)
