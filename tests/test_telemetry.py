"""Tests for the windowed power-tracing telemetry layer.

The load-bearing property: per-window activity deltas summed over a
complete trace reconstruct the kernel's aggregate ActivityReport
*bit-identically*, field by field, for any workload and window length --
and tracing never perturbs simulation results.
"""

import json
import math

import pytest

from repro.core import GPUSimPow
from repro.runner import SimJob, run_jobs
from repro.runner.cache import ResultCache, job_key
from repro.sim import gt240
from repro.sim.activity import ActivityReport
from repro.sim.gpu import SimulationOutput, simulate, simulate_sequence
from repro.telemetry import (ActivityTracer, ActivityWindow, CollectingSink,
                             NullSink, PowerTrace, TraceSink, chrome_trace,
                             render_trace, sparkline, sum_windows,
                             windows_from_dicts, windows_to_dicts)
from repro.workloads import build_benchmark

from tests.conftest import build_vecadd_launch

#: (workload label, trace intervals) pairs exercised by the property
#: tests -- chosen to cover single- and multi-window traces, boundary
#: alignment and a partial final window.
SUITE = ["vectorAdd", "scalarProd", "BlackScholes"]
INTERVALS = [100.0, 500.0, 1333.0, 1e9]


@pytest.fixture(scope="module")
def traced_runs(gt240_config, launches):
    """(kernel, interval) -> traced SimulationOutput, simulated once."""
    runs = {}
    for kernel in SUITE:
        for interval in INTERVALS:
            tracer = ActivityTracer(interval)
            runs[kernel, interval] = simulate(
                gt240_config, launches[kernel], tracer=tracer)
    return runs


@pytest.fixture(scope="module")
def untraced_runs(gt240_config, launches):
    return {kernel: simulate(gt240_config, launches[kernel])
            for kernel in SUITE}


class TestWindowInvariant:
    @pytest.mark.parametrize("kernel", SUITE)
    @pytest.mark.parametrize("interval", INTERVALS)
    def test_summed_windows_equal_aggregate_bit_identically(
            self, traced_runs, gt240_config, kernel, interval):
        out = traced_runs[kernel, interval]
        recon = sum_windows(out.windows, gt240_config)
        for name, value in out.activity.to_dict().items():
            assert getattr(recon, name) == value, (kernel, interval, name)

    @pytest.mark.parametrize("kernel", SUITE)
    @pytest.mark.parametrize("interval", INTERVALS)
    def test_tracing_does_not_perturb_results(
            self, traced_runs, untraced_runs, kernel, interval):
        traced = traced_runs[kernel, interval]
        untraced = untraced_runs[kernel]
        assert traced.activity.to_dict() == untraced.activity.to_dict()
        assert traced.cycles == untraced.cycles
        assert (traced.gmem == untraced.gmem).all()

    @pytest.mark.parametrize("kernel", SUITE)
    def test_windows_tile_the_run(self, traced_runs, kernel):
        out = traced_runs[kernel, 500.0]
        windows = out.windows
        assert windows[0].start_cycles == 0.0
        assert windows[-1].end_cycles == out.cycles
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start_cycles == prev.end_cycles
            assert cur.index == prev.index + 1
            assert cur.end_cycles > cur.start_cycles
            # occupancy is cumulative, hence monotone
            assert cur.active_cores >= prev.active_cores
            assert cur.active_clusters >= prev.active_clusters

    def test_huge_interval_gives_single_window(self, traced_runs):
        out = traced_runs["vectorAdd", 1e9]
        assert len(out.windows) == 1
        assert out.windows[0].activity.to_dict() == out.activity.to_dict()

    def test_sum_of_empty_is_zero_report(self, gt240_config):
        total = sum_windows([], gt240_config)
        assert total.to_dict() == ActivityReport().to_dict()

    def test_multi_kernel_sequence_traces_each_kernel(self, gt240_config):
        outs = simulate_sequence(gt240_config, build_benchmark("bfs"),
                                 trace_interval=500.0)
        assert len(outs) > 1
        for out in outs:
            assert out.windows
            recon = sum_windows(out.windows, gt240_config)
            assert recon.to_dict() == out.activity.to_dict()


class TestTracer:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="positive"):
            ActivityTracer(0.0)
        with pytest.raises(ValueError, match="positive"):
            ActivityTracer(-5.0)

    def test_sink_receives_every_window_in_order(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        sink = CollectingSink()
        out = simulate(gt240_config, launch,
                       tracer=ActivityTracer(200.0, sink=sink))
        assert [w.index for w in sink.windows] == \
            list(range(len(out.windows)))
        assert [w.to_dict() for w in sink.windows] == \
            [w.to_dict() for w in out.windows]

    def test_sink_begin_and_end_hooks(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        calls = []

        class Probe(TraceSink):
            def on_begin(self, config, lnch, interval_cycles):
                calls.append(("begin", config.name, interval_cycles))

            def on_end(self, aggregate, cycles):
                calls.append(("end", cycles))

        out = simulate(gt240_config, launch,
                       tracer=ActivityTracer(200.0, sink=Probe()))
        assert calls[0] == ("begin", gt240_config.name, 200.0)
        assert calls[-1] == ("end", out.cycles)

    def test_null_sink_is_inert(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        out = simulate(gt240_config, launch,
                       tracer=ActivityTracer(200.0, sink=NullSink()))
        assert out.windows

    def test_tracer_reusable_across_executions(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        tracer = ActivityTracer(200.0)
        first = simulate(gt240_config, launch, tracer=tracer)
        second = simulate(gt240_config, launch, tracer=tracer)
        # begin() re-arms: the second run's windows stand alone and the
        # first run's list is not clobbered.
        assert first.windows is not second.windows
        assert [w.to_dict() for w in first.windows] == \
            [w.to_dict() for w in second.windows]


class TestSerialization:
    def test_window_round_trip_is_exact(self, traced_runs, gt240_config):
        out = traced_runs["BlackScholes", 500.0]
        back = windows_from_dicts(
            json.loads(json.dumps(windows_to_dicts(out.windows))))
        assert sum_windows(back, gt240_config).to_dict() == \
            out.activity.to_dict()
        assert [w.to_dict() for w in back] == \
            [w.to_dict() for w in out.windows]

    def test_power_trace_round_trip(self, traced_runs, gt240_config):
        out = traced_runs["BlackScholes", 500.0]
        trace = PowerTrace.from_windows(gt240_config, "BlackScholes",
                                        out.windows, 500.0)
        back = PowerTrace.from_json(trace.to_json())
        assert back.to_dict() == trace.to_dict()
        assert back.total_activity().to_dict() == out.activity.to_dict()

    def test_simulation_result_round_trip(self, gt240_config, launches):
        sim = GPUSimPow(gt240_config)
        result = sim.run(launches["BlackScholes"], trace_interval=500.0)
        back = type(result).from_json(result.to_json())
        assert back.to_dict() == result.to_dict()
        assert back.runtime_s == result.runtime_s
        assert back.card_total_w == result.card_total_w
        assert back.trace is not None


class TestPowerTrace:
    @pytest.fixture(scope="class")
    def trace(self, traced_runs, gt240_config):
        out = traced_runs["BlackScholes", 500.0]
        return PowerTrace.from_windows(gt240_config, "BlackScholes",
                                       out.windows, 500.0)

    def test_samples_cover_runtime(self, trace, traced_runs):
        out = traced_runs["BlackScholes", 500.0]
        assert trace.n_windows == len(out.windows)
        assert trace.duration_s == out.activity.runtime_s
        for s in trace.samples:
            assert s.end_s > s.start_s
            assert s.chip_total_w > 0

    def test_energy_consistent_with_samples(self, trace):
        total = sum(s.card_w * (s.end_s - s.start_s)
                    for s in trace.samples)
        assert math.isclose(trace.energy_j, total, rel_tol=1e-12)
        assert trace.peak_card_w >= trace.mean_card_w > 0

    def test_component_breakdown_present(self, trace):
        names = trace.component_names()
        assert "Cores" in names and "DRAM" in names
        for name in names:
            assert len(trace.component_watts(name)) == trace.n_windows

    def test_chrome_trace_loads_and_has_counters(self, trace):
        data = json.loads(json.dumps(chrome_trace(trace)))
        events = data["traceEvents"]
        assert any(e.get("ph") == "C" for e in events)
        assert any(e.get("ph") == "X" for e in events)
        counters = [e for e in events if e.get("ph") == "C"
                    and e["name"] == "card power (W)"]
        assert len(counters) == trace.n_windows

    def test_render_and_sparkline(self, trace):
        text = render_trace(trace)
        assert "BlackScholes" in text and "card power" in text
        assert len(sparkline([1.0, 2.0, 3.0], width=3)) == 3
        assert sparkline([], width=10) == ""
        assert sparkline([5.0] * 4) == "===="  # flat series: mid-level


class TestRunnerIntegration:
    def test_traced_job_round_trips_through_cache(self, gt240_config,
                                                  tmp_path):
        launch, _, _ = build_vecadd_launch()
        cache = ResultCache(tmp_path / "cache")
        job = SimJob(config=gt240_config, kernel="tiny", launch=launch,
                     trace_interval=200.0)
        first, = run_jobs([job], n_jobs=1, cache=cache)
        assert not first.cached and first.windows
        second, = run_jobs([job], n_jobs=1, cache=cache)
        assert second.cached
        assert [w.to_dict() for w in second.windows] == \
            [w.to_dict() for w in first.windows]
        assert second.activity.to_dict() == first.activity.to_dict()

    def test_trace_interval_separates_cache_keys(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        plain = SimJob(config=gt240_config, launch=launch)
        traced = SimJob(config=gt240_config, launch=launch,
                        trace_interval=200.0)
        other = SimJob(config=gt240_config, launch=launch,
                       trace_interval=400.0)
        assert job_key(plain) != job_key(traced) != job_key(other)

    def test_untraced_job_key_unchanged_by_telemetry_field(
            self, gt240_config):
        # trace_interval=None must not enter the payload: keys (and all
        # pre-existing cache entries) stay exactly as before this field
        # existed.
        launch, _, _ = build_vecadd_launch()
        job = SimJob(config=gt240_config, launch=launch)
        assert job.trace_interval is None
        assert job_key(job) == job_key(
            SimJob(config=gt240_config, launch=launch,
                   trace_interval=None))

    def test_pooled_and_serial_windows_identical(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        jobs = [SimJob(config=gt240_config, launch=launch,
                       trace_interval=200.0, tag=f"j{i}")
                for i in range(2)]
        serial = run_jobs(jobs, n_jobs=1, cache=None)
        pooled = run_jobs(jobs, n_jobs=2, cache=None)
        for a, b in zip(serial, pooled):
            assert [w.to_dict() for w in a.windows] == \
                [w.to_dict() for w in b.windows]

    def test_rejects_nonpositive_trace_interval(self, gt240_config):
        launch, _, _ = build_vecadd_launch()
        with pytest.raises(ValueError, match="positive"):
            SimJob(config=gt240_config, launch=launch, trace_interval=0.0)


class TestReplay:
    def test_replay_threads_real_runtime(self, gt240_config, launches):
        """GPUSimPow.run(activity=...) must not rederive runtime from
        shader cycles -- a report with a foreign runtime keeps it."""
        sim = GPUSimPow(gt240_config)
        launch = launches["BlackScholes"]
        base = sim.run(launch)
        doctored = ActivityReport.from_dict(base.activity.to_dict())
        doctored.runtime_s = base.runtime_s * 3.0
        replayed = sim.run(launch, activity=doctored)
        assert replayed.runtime_s == doctored.runtime_s
        assert math.isclose(replayed.energy_j,
                            replayed.card_total_w * doctored.runtime_s,
                            rel_tol=1e-12)

    def test_replay_fabricates_no_memory_image(self, gt240_config,
                                               launches):
        sim = GPUSimPow(gt240_config)
        launch = launches["BlackScholes"]
        replayed = sim.run(launch, activity=sim.run(launch).activity)
        assert replayed.performance.gmem is None

    def test_replay_with_windows_builds_trace(self, gt240_config,
                                              launches):
        sim = GPUSimPow(gt240_config)
        launch = launches["BlackScholes"]
        fresh = sim.run(launch, trace_interval=500.0)
        replayed = sim.run(launch, activity=fresh.activity,
                           windows=fresh.performance.windows)
        assert replayed.trace is not None
        assert replayed.trace.to_dict()["samples"] == \
            fresh.trace.to_dict()["samples"]

    def test_replay_classmethod(self, gt240_config, launches):
        out = SimulationOutput.replay(gt240_config, None,
                                      ActivityReport())
        assert out.gmem is None and out.cycles == 0.0
