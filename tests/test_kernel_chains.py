"""End-to-end tests for dependent kernel chains (simulate_sequence)."""

import numpy as np
import pytest

from repro.core.gpusimpow import BenchmarkResult, GPUSimPow
from repro.isa import Dim3, KernelBuilder, KernelLaunch, Sreg
from repro.sim import gt240, simulate_sequence
from repro.workloads import bfs, build_benchmark, mergesort
from tests.conftest import build_vecadd_launch


class TestBfsChain:
    @pytest.fixture(scope="class")
    def final_memory(self):
        outs = simulate_sequence(gt240(), build_benchmark("bfs"))
        return outs[-1].gmem

    def test_full_bfs_level(self, final_memory):
        row, edges, frontier, visited = bfs.make_graph()
        ec = len(edges)
        mask_off = bfs.EDGE_BASE + ec
        upd_off = mask_off + bfs.N_NODES
        vis_off = upd_off + bfs.N_NODES
        expected = np.zeros(bfs.N_NODES)
        for n in np.nonzero(frontier)[0]:
            for e in range(int(row[n]), int(row[n + 1])):
                nb = int(edges[e])
                if visited[nb] == 0:
                    expected[nb] = 1
        # bfs2 consumed bfs1's updating flags: new frontier, visited set,
        # updating cleared.
        got_mask = final_memory[mask_off:mask_off + bfs.N_NODES]
        got_upd = final_memory[upd_off:upd_off + bfs.N_NODES]
        got_vis = final_memory[vis_off:vis_off + bfs.N_NODES]
        assert np.array_equal(got_mask, expected)
        assert (got_upd == 0).all()
        assert np.array_equal(got_vis, np.maximum(visited, expected))


class TestMergeSortChain:
    def test_full_pipeline_produces_merged_runs(self):
        """mergeSort1 -> 2 -> 3 -> 4 on one memory image: the final
        merge consumes the tile sort's real output."""
        outs = simulate_sequence(gt240(), build_benchmark("mergesort"))
        final = outs[-1].gmem
        keys = mergesort.make_inputs()
        sorted_tiles = mergesort.reference_tile_sort(keys)
        merged = final[mergesort.MERGED_OFF:mergesort.MERGED_OFF + mergesort.N]
        assert np.array_equal(merged,
                              mergesort.reference_merge(sorted_tiles))

    def test_each_kernel_reports_own_activity(self):
        outs = simulate_sequence(gt240(), build_benchmark("mergesort"))
        issued = [o.activity.issued_instructions for o in outs]
        # Four distinct kernels with very different sizes; the tiny
        # mergeSort3 must not inherit the big sort's counts.
        assert issued[2] < issued[0] / 100


class TestSequenceSemantics:
    def test_empty_sequence(self):
        assert simulate_sequence(gt240(), []) == []

    def test_single_matches_plain_run(self, launches):
        from repro.sim import simulate
        launch = launches["vectorAdd"]
        seq = simulate_sequence(gt240(), [launch])[0]
        solo = simulate(gt240(), launch)
        assert np.array_equal(seq.gmem, solo.gmem)
        assert seq.cycles == solo.cycles


class TestDifferingFootprints:
    """Regression: a later launch with the larger footprint used to run
    against zeros where its own initial data should have been -- only
    the first launch's image was ever applied to the shared memory."""

    N = 64

    def _consumer_launch(self, zvals):
        """out = c * z, where c is the producer's output and z is input
        the *second* launch declares, beyond the producer's footprint."""
        n = self.N
        kb = KernelBuilder("chain_consumer")
        i, c, z, out = kb.regs(4)
        kb.mov(i, Sreg("gtid"))
        kb.ldg(c, i, offset=2 * n)
        kb.ldg(z, i, offset=3 * n)
        kb.fmul(out, c, z)
        kb.stg(out, i, offset=4 * n)
        kb.exit()
        return KernelLaunch(kernel=kb.build(), grid=Dim3(1),
                            block=Dim3(n), globals_init={3 * n: zvals},
                            gmem_words=5 * n)

    def test_later_larger_launch_sees_its_initializer(self):
        n = self.N
        producer, x, y = build_vecadd_launch(n=n, block=n, grid=1)
        zvals = np.random.default_rng(7).standard_normal(n)
        consumer = self._consumer_launch(zvals)
        assert producer.gmem_words < consumer.gmem_words
        outs = simulate_sequence(gt240(), [producer, consumer])
        final = outs[-1].gmem
        np.testing.assert_array_equal(final[4 * n:5 * n], (x + y) * zvals)

    def test_predecessor_output_is_never_clobbered(self):
        """The consumer's image must be applied only beyond the high-water
        mark: the producer's live output region stays untouched even
        though build_global_memory() would zero it."""
        n = self.N
        producer, x, y = build_vecadd_launch(n=n, block=n, grid=1)
        zvals = np.ones(n)
        outs = simulate_sequence(gt240(),
                                 [producer, self._consumer_launch(zvals)])
        final = outs[-1].gmem
        np.testing.assert_array_equal(final[2 * n:3 * n], x + y)
        np.testing.assert_array_equal(final[:n], x)

    def test_shrinking_footprints_keep_state(self):
        """When the first launch already has the larger footprint, a later
        smaller launch must not re-apply anything."""
        n = self.N
        producer, x, y = build_vecadd_launch(n=n, block=n, grid=1)
        # Same producer twice: the second run adds x + y again from the
        # *original* inputs (its footprint is within the high-water mark,
        # so its initializer is not re-applied and x/y are unchanged).
        outs = simulate_sequence(gt240(), [producer, producer])
        np.testing.assert_array_equal(outs[-1].gmem[2 * n:3 * n], x + y)


class TestBenchmarkResult:
    @pytest.fixture(scope="class")
    def result(self):
        return GPUSimPow(gt240()).run_benchmark("bfs")

    def test_kernels_in_order(self, result):
        assert [k.kernel_name for k in result.kernels] == ["bfs1", "bfs2"]

    def test_aggregates(self, result):
        assert result.total_runtime_s == pytest.approx(
            sum(k.runtime_s for k in result.kernels))
        assert result.total_energy_j > 0
        assert result.average_power_w == pytest.approx(
            result.total_energy_j / result.total_runtime_s)

    def test_benchmark_result_type(self, result):
        assert isinstance(result, BenchmarkResult)
        assert result.benchmark == "bfs"
