"""End-to-end tests for dependent kernel chains (simulate_sequence)."""

import numpy as np
import pytest

from repro.core.gpusimpow import BenchmarkResult, GPUSimPow
from repro.sim import gt240, simulate_sequence
from repro.workloads import bfs, build_benchmark, mergesort


class TestBfsChain:
    @pytest.fixture(scope="class")
    def final_memory(self):
        outs = simulate_sequence(gt240(), build_benchmark("bfs"))
        return outs[-1].gmem

    def test_full_bfs_level(self, final_memory):
        row, edges, frontier, visited = bfs.make_graph()
        ec = len(edges)
        mask_off = bfs.EDGE_BASE + ec
        upd_off = mask_off + bfs.N_NODES
        vis_off = upd_off + bfs.N_NODES
        expected = np.zeros(bfs.N_NODES)
        for n in np.nonzero(frontier)[0]:
            for e in range(int(row[n]), int(row[n + 1])):
                nb = int(edges[e])
                if visited[nb] == 0:
                    expected[nb] = 1
        # bfs2 consumed bfs1's updating flags: new frontier, visited set,
        # updating cleared.
        got_mask = final_memory[mask_off:mask_off + bfs.N_NODES]
        got_upd = final_memory[upd_off:upd_off + bfs.N_NODES]
        got_vis = final_memory[vis_off:vis_off + bfs.N_NODES]
        assert np.array_equal(got_mask, expected)
        assert (got_upd == 0).all()
        assert np.array_equal(got_vis, np.maximum(visited, expected))


class TestMergeSortChain:
    def test_full_pipeline_produces_merged_runs(self):
        """mergeSort1 -> 2 -> 3 -> 4 on one memory image: the final
        merge consumes the tile sort's real output."""
        outs = simulate_sequence(gt240(), build_benchmark("mergesort"))
        final = outs[-1].gmem
        keys = mergesort.make_inputs()
        sorted_tiles = mergesort.reference_tile_sort(keys)
        merged = final[mergesort.MERGED_OFF:mergesort.MERGED_OFF + mergesort.N]
        assert np.array_equal(merged,
                              mergesort.reference_merge(sorted_tiles))

    def test_each_kernel_reports_own_activity(self):
        outs = simulate_sequence(gt240(), build_benchmark("mergesort"))
        issued = [o.activity.issued_instructions for o in outs]
        # Four distinct kernels with very different sizes; the tiny
        # mergeSort3 must not inherit the big sort's counts.
        assert issued[2] < issued[0] / 100


class TestSequenceSemantics:
    def test_empty_sequence(self):
        assert simulate_sequence(gt240(), []) == []

    def test_single_matches_plain_run(self, launches):
        from repro.sim import simulate
        launch = launches["vectorAdd"]
        seq = simulate_sequence(gt240(), [launch])[0]
        solo = simulate(gt240(), launch)
        assert np.array_equal(seq.gmem, solo.gmem)
        assert seq.cycles == solo.cycles


class TestBenchmarkResult:
    @pytest.fixture(scope="class")
    def result(self):
        return GPUSimPow(gt240()).run_benchmark("bfs")

    def test_kernels_in_order(self, result):
        assert [k.kernel_name for k in result.kernels] == ["bfs1", "bfs2"]

    def test_aggregates(self, result):
        assert result.total_runtime_s == pytest.approx(
            sum(k.runtime_s for k in result.kernels))
        assert result.total_energy_j > 0
        assert result.average_power_w == pytest.approx(
            result.total_energy_j / result.total_runtime_s)

    def test_benchmark_result_type(self, result):
        assert isinstance(result, BenchmarkResult)
        assert result.benchmark == "bfs"
