"""Direct unit tests for the load/store unit (Fig. 3 path)."""

import numpy as np
import pytest

from repro.isa.instructions import Instruction, Reg
from repro.sim.config import gt240, gtx580
from repro.sim.functional import WarpContext
from repro.sim.ldst import LoadStoreUnit
from repro.sim.memsys import MemorySystem

WARP = 32


def make_unit(cfg=None, gmem_words=4096, cmem=None):
    cfg = cfg or gt240()
    memsys = MemorySystem(cfg)
    gmem = np.arange(gmem_words, dtype=np.float64)
    return LoadStoreUnit(cfg, memsys, gmem, cmem), gmem


def make_ctx(n_regs=4):
    specials = {"tid": np.arange(WARP, dtype=np.float64)}
    return WarpContext(n_regs, 1, specials, WARP)


def full_mask():
    return np.ones(WARP, dtype=bool)


def smem_array(words=64):
    return np.zeros(words, dtype=np.float64)


class TestGlobalLoads:
    def test_coalesced_load_values_and_counts(self):
        unit, gmem = make_unit()
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        inst = Instruction("LDG", Reg(0), (Reg(1),), offset=96)
        done = unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)
        assert done > 0
        assert np.array_equal(ctx.regs[0], gmem[96:96 + WARP])
        # 32 consecutive words starting on a segment boundary: 1 txn.
        assert unit.coalescer.transactions == 1
        assert unit.agu.sub_agu_ops == 4

    def test_strided_load_many_transactions(self):
        unit, _ = make_unit()
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64) * 64
        inst = Instruction("LDG", Reg(0), (Reg(1),))
        unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)
        # 64-word (256 B) stride: every lane hits its own 128 B segment.
        assert unit.coalescer.transactions == WARP

    def test_masked_lanes_untouched(self):
        unit, _ = make_unit()
        ctx = make_ctx()
        ctx.regs[0][:] = -1.0
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        mask = full_mask()
        mask[16:] = False
        inst = Instruction("LDG", Reg(0), (Reg(1),))
        unit.execute(inst, ctx, mask, smem_array(), now=0.0)
        assert (ctx.regs[0][16:] == -1.0).all()
        assert (ctx.regs[0][:16] == np.arange(16)).all()

    def test_out_of_bounds_clear_error(self):
        unit, _ = make_unit(gmem_words=64)
        ctx = make_ctx()
        ctx.regs[1] = np.full(WARP, 1000.0)
        inst = Instruction("LDG", Reg(0), (Reg(1),))
        with pytest.raises(IndexError, match="gmem_words"):
            unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)

    def test_busy_until_blocks_next(self):
        unit, _ = make_unit()
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        inst = Instruction("LDG", Reg(0), (Reg(1),))
        unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)
        assert not unit.can_accept(0.0)
        with pytest.raises(RuntimeError, match="busy"):
            unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)


class TestGlobalStores:
    def test_store_writes_and_returns_fast(self):
        unit, gmem = make_unit()
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        ctx.regs[2] = np.full(WARP, 7.5)
        inst = Instruction("STG", None, (Reg(1), Reg(2)), offset=200)
        done = unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)
        assert (gmem[200:200 + WARP] == 7.5).all()
        # Fire-and-forget through the store buffer: the warp's dependence
        # clears long before the DRAM round trip.
        assert done <= 10.0
        assert unit.memsys.dram.writes > 0


class TestL1Behaviour:
    def test_l1_hit_fast_path(self):
        cfg = gtx580()
        unit, _ = make_unit(cfg)
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        inst = Instruction("LDG", Reg(0), (Reg(1),))
        t_miss = unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)
        t_hit = unit.execute(inst, ctx, full_mask(), smem_array(),
                             now=10_000.0) - 10_000.0
        assert t_hit < t_miss
        assert unit.l1.misses == 1 and unit.l1.reads == 2

    def test_gt240_has_no_l1(self):
        unit, _ = make_unit(gt240())
        assert unit.l1 is None


class TestConstantPath:
    def test_equality_rule_single_request(self):
        cmem = np.arange(16, dtype=np.float64)
        unit, _ = make_unit(cmem=cmem)
        ctx = make_ctx()
        ctx.regs[1] = np.zeros(WARP)  # all lanes read the same word
        inst = Instruction("LDC", Reg(0), (Reg(1),), offset=3)
        unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)
        assert unit.const_requests == 1
        assert (ctx.regs[0] == 3.0).all()

    def test_divergent_addresses_multiple_requests(self):
        cmem = np.arange(64, dtype=np.float64)
        unit, _ = make_unit(cmem=cmem)
        ctx = make_ctx()
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        inst = Instruction("LDC", Reg(0), (Reg(1),))
        unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)
        assert unit.const_requests == WARP

    def test_const_oob_error(self):
        cmem = np.arange(4, dtype=np.float64)
        unit, _ = make_unit(cmem=cmem)
        ctx = make_ctx()
        ctx.regs[1] = np.full(WARP, 100.0)
        inst = Instruction("LDC", Reg(0), (Reg(1),))
        with pytest.raises(IndexError, match="constant"):
            unit.execute(inst, ctx, full_mask(), smem_array(), now=0.0)


class TestSharedPath:
    def test_conflict_phases_extend_completion(self):
        unit, _ = make_unit()
        ctx = make_ctx()
        smem = smem_array(1024)
        smem[:] = np.arange(1024)
        # Conflict-free vs 16-way conflict.
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        fast = unit.execute(Instruction("LDS", Reg(0), (Reg(1),)),
                            ctx, full_mask(), smem, now=0.0)
        unit.busy_until = 0.0
        ctx.regs[1] = np.arange(WARP, dtype=np.float64) * 16
        slow = unit.execute(Instruction("LDS", Reg(0), (Reg(1),)),
                            ctx, full_mask(), smem, now=0.0)
        assert slow > fast

    def test_smem_store_values(self):
        unit, _ = make_unit()
        ctx = make_ctx()
        smem = smem_array(64)
        ctx.regs[1] = np.arange(WARP, dtype=np.float64)
        ctx.regs[2] = np.arange(WARP, dtype=np.float64) * 2
        unit.execute(Instruction("STS", None, (Reg(1), Reg(2))),
                     ctx, full_mask(), smem, now=0.0)
        assert np.array_equal(smem[:WARP], np.arange(WARP) * 2)
