"""Unit and property tests for the reconvergence stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stack import ReconvergenceStack


def mask(*lanes, size=8):
    m = np.zeros(size, dtype=bool)
    for lane in lanes:
        m[lane] = True
    return m


def full(size=8):
    return np.ones(size, dtype=bool)


class TestBasics:
    def test_initial_state(self):
        s = ReconvergenceStack(8)
        pc, m = s.current()
        assert pc == 0 and m.all() and s.depth == 1

    def test_initial_mask_respected(self):
        s = ReconvergenceStack(8, initial_mask=mask(0, 1, 2))
        _, m = s.current()
        assert m.sum() == 3

    def test_advance_moves_pc(self):
        s = ReconvergenceStack(8)
        s.advance(5)
        assert s.current()[0] == 5

    def test_advance_on_empty_raises(self):
        s = ReconvergenceStack(8)
        s.exit_lanes(full())
        with pytest.raises(RuntimeError):
            s.advance(1)


class TestDivergence:
    def test_uniform_taken_no_push(self):
        s = ReconvergenceStack(8)
        diverged = s.diverge(full(), target=10, fallthrough=1, reconv_pc=20)
        assert not diverged
        assert s.current()[0] == 10 and s.depth == 1

    def test_uniform_not_taken_no_push(self):
        s = ReconvergenceStack(8)
        diverged = s.diverge(mask(), target=10, fallthrough=1, reconv_pc=20)
        assert not diverged
        assert s.current()[0] == 1

    def test_divergent_executes_taken_first(self):
        s = ReconvergenceStack(8)
        assert s.diverge(mask(0, 1), target=10, fallthrough=1, reconv_pc=20)
        pc, m = s.current()
        assert pc == 10 and m.sum() == 2
        assert s.depth == 3

    def test_reconvergence_pops_and_restores(self):
        s = ReconvergenceStack(8)
        s.diverge(mask(0), target=10, fallthrough=1, reconv_pc=20)
        # taken side runs to the reconvergence point
        s.advance(20)
        pc, m = s.current()
        assert pc == 1 and m.sum() == 7      # fall-through side next
        s.advance(20)
        pc, m = s.current()
        assert pc == 20 and m.all()          # reconverged

    def test_branch_to_reconvergence_point_not_executed(self):
        # Taken target == reconvergence PC: taken lanes wait reconverged.
        s = ReconvergenceStack(8)
        assert s.diverge(mask(0, 1), target=7, fallthrough=1, reconv_pc=7)
        pc, m = s.current()
        assert pc == 1 and m.sum() == 6      # only the not-taken side runs
        assert s.depth == 2

    def test_loop_backedge_fallthrough_is_reconv(self):
        # Backward branch: fallthrough == reconv; non-loopers just wait.
        s = ReconvergenceStack(8)
        assert s.diverge(mask(3, 4, 5), target=2, fallthrough=9, reconv_pc=9)
        pc, m = s.current()
        assert pc == 2 and m.sum() == 3
        s.advance(9)                          # loopers reach the exit
        pc, m = s.current()
        assert pc == 9 and m.all()

    def test_nested_divergence(self):
        s = ReconvergenceStack(8)
        s.diverge(mask(0, 1, 2, 3), target=10, fallthrough=1, reconv_pc=30)
        s.diverge(mask(0, 1), target=15, fallthrough=11, reconv_pc=25)
        pc, m = s.current()
        assert pc == 15 and m.sum() == 2
        assert s.max_depth >= 4


class TestExit:
    def test_exit_all_empties_stack(self):
        s = ReconvergenceStack(8)
        s.exit_lanes(full())
        assert s.empty

    def test_partial_exit_keeps_remaining(self):
        s = ReconvergenceStack(8)
        s.exit_lanes(mask(0, 1, 2))
        _, m = s.current()
        assert m.sum() == 5

    def test_exit_inside_divergence_pops_empty_tokens(self):
        s = ReconvergenceStack(8)
        s.diverge(mask(0, 1), target=10, fallthrough=1, reconv_pc=20)
        s.exit_lanes(mask(0, 1))  # entire taken side exits
        pc, m = s.current()
        assert pc == 1 and m.sum() == 6

    def test_counters(self):
        s = ReconvergenceStack(8)
        s.diverge(mask(0), target=10, fallthrough=1, reconv_pc=20)
        assert s.pushes == 2
        s.advance(20)
        assert s.pops == 1


@st.composite
def lane_masks(draw):
    size = 32
    bits = draw(st.lists(st.booleans(), min_size=size, max_size=size))
    return np.array(bits, dtype=bool)


class TestProperties:
    @given(taken=lane_masks())
    @settings(max_examples=60, deadline=None)
    def test_mask_partition_invariant(self, taken):
        """Taken + not-taken masks always partition the active mask."""
        s = ReconvergenceStack(32)
        active_before = s.current()[1].copy()
        s.diverge(taken, target=10, fallthrough=1, reconv_pc=20)
        covered = np.zeros(32, dtype=bool)
        for token in s._tokens:
            # Tokens must be disjoint except the reconvergence token,
            # which is the union.
            covered |= token.mask
        assert (covered == active_before).all()

    @given(taken=lane_masks())
    @settings(max_examples=60, deadline=None)
    def test_reconvergence_restores_full_mask(self, taken):
        """Running both sides to the reconvergence point restores the
        original active mask exactly."""
        s = ReconvergenceStack(32)
        original = s.current()[1].copy()
        s.diverge(taken, target=10, fallthrough=1, reconv_pc=20)
        guard = 0
        while s.current()[0] != 20 and guard < 10:
            s.advance(20)
            guard += 1
        pc, m = s.current()
        assert pc == 20
        assert (m == original).all()
        assert s.depth == 1
