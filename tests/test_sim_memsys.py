"""Unit tests for the shared uncore memory system."""

import pytest

from repro.sim.config import gt240, gtx580
from repro.sim.memsys import MemorySystem


class TestWithoutL2:
    def test_gt240_has_no_l2(self):
        ms = MemorySystem(gt240())
        assert ms.l2_banks is None
        assert ms.l2_reads == 0

    def test_transaction_reaches_dram(self):
        ms = MemorySystem(gt240())
        done = ms.transaction(0, 128, now=0.0, is_write=False)
        assert done > 0
        assert ms.dram.reads > 0
        assert ms.mc_accesses == 1

    def test_write_transaction(self):
        ms = MemorySystem(gt240())
        ms.transaction(0, 128, 0.0, is_write=True)
        assert ms.dram.writes > 0

    def test_large_transaction_multiple_bursts(self):
        cfg = gt240()
        ms = MemorySystem(cfg)
        ms.transaction(0, 128, 0.0, False)
        expected = 128 // cfg.dram_burst_bytes
        assert ms.dram.reads == expected

    def test_noc_flits_counted(self):
        ms = MemorySystem(gt240())
        ms.transaction(0, 128, 0.0, False)
        assert ms.noc.flits > 0


class TestWithL2:
    def test_gtx580_l2_banks_per_partition(self):
        cfg = gtx580()
        ms = MemorySystem(cfg)
        assert len(ms.l2_banks) == cfg.n_mem_partitions

    def test_l2_hit_avoids_dram(self):
        ms = MemorySystem(gtx580())
        ms.transaction(0, 128, 0.0, False)      # miss, fills L2
        reads_after_miss = ms.dram.reads
        t_hit = ms.transaction(0, 128, 1000.0, False)
        assert ms.dram.reads == reads_after_miss
        assert ms.l2_misses == 1

    def test_l2_hit_faster_than_miss(self):
        ms = MemorySystem(gtx580())
        t_miss = ms.transaction(0, 128, 0.0, False) - 0.0
        t_hit = ms.transaction(0, 128, 10000.0, False) - 10000.0
        assert t_hit < t_miss

    def test_addresses_spread_partitions(self):
        cfg = gtx580()
        ms = MemorySystem(cfg)
        for i in range(cfg.n_mem_partitions):
            ms.transaction(i * cfg.l2_line, 128, 0.0, False)
        touched = sum(1 for bank in ms.l2_banks if bank.accesses > 0)
        assert touched == cfg.n_mem_partitions

    def test_write_no_allocate(self):
        ms = MemorySystem(gtx580())
        ms.transaction(0, 128, 0.0, True)
        # Write missed and did not allocate: a later read misses again.
        ms.transaction(0, 128, 1000.0, False)
        assert ms.l2_misses == 2


class TestContention:
    def test_latency_grows_under_load(self):
        ms = MemorySystem(gt240())
        first = ms.transaction(0, 128, 0.0, False) - 0.0
        latencies = []
        for i in range(1, 64):
            done = ms.transaction(i * 4096, 128, 0.0, False)
            latencies.append(done)
        assert latencies[-1] > first
