"""Tests for the command-line interface and activity-trace round trips."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sim.activity import ActivityReport
from repro.sim import gt240, simulate
from tests.conftest import build_vecadd_launch


class TestActivityJSON:
    def test_roundtrip(self):
        launch, _, _ = build_vecadd_launch()
        act = simulate(gt240(), launch).activity
        restored = ActivityReport.from_json(act.to_json())
        assert restored.as_dict() == act.as_dict()

    def test_rejects_unknown_counters(self):
        payload = json.dumps({"warp_drive_engagements": 9000})
        with pytest.raises(ValueError, match="unknown activity counters"):
            ActivityReport.from_json(payload)

    def test_partial_trace_fills_defaults(self):
        act = ActivityReport.from_json(json.dumps({"fp_ops": 42.0}))
        assert act.fp_ops == 42.0
        assert act.int_ops == 0.0


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("list", "arch", "run", "power", "validate"):
            args = parser.parse_args(
                [cmd] + (["x"] if cmd == "run" else [])
                + (["--trace", "t"] if cmd == "power" else []))
            assert args.command == cmd

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "vectorAdd", "--gpu", "GTX580", "--profile"])
        assert args.kernel == "vectorAdd"
        assert args.gpu == "GTX580"
        assert args.profile

    def test_run_trace_flags(self):
        args = build_parser().parse_args(
            ["run", "vectorAdd", "--trace-interval", "500",
             "--trace-out", "t.json", "--trace-format", "chrome"])
        assert args.trace_interval == 500.0
        assert args.trace_out == "t.json"
        assert args.trace_format == "chrome"

    def test_backend_flag_defaults_to_cycle(self):
        assert build_parser().parse_args(
            ["run", "vectorAdd"]).backend == "cycle"
        assert build_parser().parse_args(
            ["validate", "--backend", "analytical"]).backend == "analytical"

    def test_cache_subcommand_flags(self):
        args = build_parser().parse_args(["cache", "clear", "--yes"])
        assert args.action == "clear" and args.yes
        assert build_parser().parse_args(["cache", "stats"]).dir is None

    def test_version_flag(self, capsys):
        from repro import SIM_VERSION, __version__
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out and SIM_VERSION in out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out and "Rodinia" in out

    def test_arch(self, capsys):
        assert main(["arch", "--gpu", "GT240"]) == 0
        out = capsys.readouterr().out
        assert "mm^2" in out and "static" in out

    def test_run_and_power_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["run", "vectorAdd", "--save-trace", str(trace)]) == 0
        run_out = capsys.readouterr().out
        assert "chip power" in run_out
        assert trace.exists()

        assert main(["power", "--trace", str(trace)]) == 0
        power_out = capsys.readouterr().out
        assert "chip total" in power_out
        # The trace-driven power matches the inline run's number.
        inline = next(l for l in run_out.splitlines() if "chip power" in l)
        offline = next(l for l in power_out.splitlines()
                       if "chip total" in l)
        inline_w = float(inline.split()[2])
        offline_w = float(offline.split()[2])
        assert inline_w == pytest.approx(offline_w, abs=0.05)

    def test_run_unknown_kernel(self, capsys):
        assert main(["run", "notAKernel"]) == 2

    def test_run_profile_prints_tree(self, capsys):
        assert main(["run", "vectorAdd", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Undiff. Core" in out and "GDDR5 DRAM" in out

    def test_validate_subset(self, capsys):
        assert main(["validate", "--kernels", "vectorAdd,bfs2"]) == 0
        out = capsys.readouterr().out
        assert "avg relative error" in out
        assert "vectorAdd" in out

    def test_xml_config_flow(self, tmp_path, capsys):
        xml = tmp_path / "gpu.xml"
        xml.write_text(gt240().scaled(n_clusters=2).to_xml())
        assert main(["arch", "--config", str(xml)]) == 0
        out = capsys.readouterr().out
        assert "GT240" in out

    def test_list_shows_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backends:" in out
        assert "analytical" in out and "cycle" in out

    def test_run_with_analytical_backend(self, capsys):
        assert main(["run", "vectorAdd", "--backend", "analytical"]) == 0
        out = capsys.readouterr().out
        assert "(analytical backend)" in out
        assert "chip power" in out

    def test_run_unknown_backend(self, capsys):
        assert main(["run", "vectorAdd", "--backend", "quantum"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_run_trace_rejected_for_analytical(self, capsys):
        assert main(["run", "vectorAdd", "--backend", "analytical",
                     "--trace-interval", "200"]) == 2
        assert "does not support" in capsys.readouterr().err

    def test_validate_with_backend(self, capsys):
        assert main(["validate", "--kernels", "vectorAdd",
                     "--backend", "analytical"]) == 0
        assert "avg relative error" in capsys.readouterr().out

    def test_cache_stats_and_clear(self, capsys):
        # Populate the (test-isolated) cache with one entry.
        assert main(["run", "vectorAdd"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:  1" in out and "location:" in out
        assert main(["cache", "clear", "--yes"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:  0" in capsys.readouterr().out

    def test_cache_clear_empty_is_noop(self, capsys):
        assert main(["cache", "clear", "--yes"]) == 0
        assert "already empty" in capsys.readouterr().out

    def test_cache_clear_aborts_without_confirmation(self, capsys,
                                                     monkeypatch):
        assert main(["run", "vectorAdd"]) == 0
        capsys.readouterr()
        monkeypatch.setattr("builtins.input", lambda prompt: "n")
        assert main(["cache", "clear"]) == 1
        assert "aborted" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries:  1" in capsys.readouterr().out


class TestTraceCommands:
    def test_run_with_trace_renders_and_writes(self, tmp_path, capsys):
        chrome = tmp_path / "trace.chrome.json"
        assert main(["run", "vectorAdd", "--trace-interval", "200",
                     "--trace-out", str(chrome),
                     "--trace-format", "chrome"]) == 0
        out = capsys.readouterr().out
        assert "power trace:" in out and "card power" in out
        data = json.loads(chrome.read_text())
        assert any(e.get("ph") == "C" for e in data["traceEvents"])

    def test_trace_json_round_trips(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["run", "vectorAdd", "--trace-interval", "200",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()
        from repro.telemetry import PowerTrace
        trace = PowerTrace.from_json(path.read_text())
        assert trace.kernel == "vectorAdd"
        assert trace.n_windows >= 1

    def test_trace_out_requires_interval(self, tmp_path, capsys):
        assert main(["run", "vectorAdd",
                     "--trace-out", str(tmp_path / "t.json")]) == 2

    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "powertrace" in out and "table4" in out

    def test_experiments_dispatch(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "===== table2 =====" in out and "GT240" in out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "ghost"]) == 2


class TestDisasm:
    def test_disasm_lists_instructions(self, capsys):
        assert main(["disasm", "vectorAdd"]) == 0
        out = capsys.readouterr().out
        assert "LDG" in out and "FADD" in out and "EXIT" in out

    def test_disasm_unknown_kernel(self, capsys):
        assert main(["disasm", "ghost"]) == 2

    def test_disasm_annotates_reconvergence(self, capsys):
        assert main(["disasm", "bfs1"]) == 0
        out = capsys.readouterr().out
        assert "reconverge @" in out
        assert "\nL" in out  # at least one branch-target label marker


class TestLint:
    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["lint", "--strict", "--format", "json",
             "--kernels", "vectorAdd", "--min-severity", "warning"])
        assert args.command == "lint"
        assert args.strict and args.format == "json"
        assert args.kernels == "vectorAdd"
        assert args.min_severity == "warning"
        assert build_parser().parse_args(["lint"]).min_severity == "info"

    def test_lint_single_kernel_strict_ok(self, capsys):
        assert main(["lint", "--kernels", "vectorAdd", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "vectorAdd" in out and "ok" in out

    def test_lint_all_workloads_strict_passes(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out

    def test_lint_json_output(self, capsys):
        assert main(["lint", "--kernels", "matrixMul",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert all({"rule", "severity", "kernel"} <= set(d)
                   for d in payload)

    def test_lint_unknown_kernel(self, capsys):
        assert main(["lint", "--kernels", "warpdrive"]) == 2
        assert "unknown kernel" in capsys.readouterr().err


class TestErrorBudgetValidation:
    @pytest.mark.parametrize("bad", ["nan", "inf", "-inf", "-0.1", "1.5"])
    def test_non_finite_and_out_of_range_budgets_exit_2(self, bad,
                                                        capsys):
        rc = main(["run", "vectorAdd", "--gpu", "GT240",
                   "--backend", "auto", "--error-budget=" + bad,
                   "--no-cache"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "finite fraction in [0, 1]" in err

    def test_budget_requires_auto_backend(self, capsys):
        rc = main(["run", "vectorAdd", "--gpu", "GT240",
                   "--backend", "cycle", "--error-budget", "0.1",
                   "--no-cache"])
        assert rc == 2
        assert "requires --backend auto" in capsys.readouterr().err

    def test_validate_checks_budget_too(self, capsys):
        rc = main(["validate", "--gpu", "GT240", "--backend", "auto",
                   "--error-budget", "nan", "--no-cache"])
        assert rc == 2
        assert "finite fraction" in capsys.readouterr().err

    def test_boundary_budgets_parse(self):
        # 0.0 and 1.0 are legal; the parser path must not reject them.
        args = build_parser().parse_args(
            ["run", "vectorAdd", "--backend", "auto",
             "--error-budget", "0.0"])
        from repro.cli import _check_error_budget
        assert _check_error_budget(args) == 0
        args.error_budget = 1.0
        assert _check_error_budget(args) == 0


class TestFleetCLI:
    def test_fleet_json_smoke(self, capsys, tmp_path):
        out = tmp_path / "fleet.json"
        rc = main(["fleet", "--gpus", "GTX580", "--requests", "20",
                   "--duration", "3600", "--no-cache", "--json",
                   "--out", str(out)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger"]["requests"] == 20
        assert payload["kwh"] > 0
        assert json.loads(out.read_text()) == payload

    def test_fleet_table_smoke(self, capsys):
        rc = main(["fleet", "--gpus", "2xGT240", "--requests", "10",
                   "--duration", "600", "--no-cache"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "bill:" in text and "kWh" in text

    def test_fleet_scenario_file(self, capsys, tmp_path):
        from repro.fleet import FleetScenario
        path = tmp_path / "scenario.json"
        scenario = FleetScenario(gpus=["GT240"], duration_s=600.0,
                                 n_requests=5, error_budget=0.10)
        path.write_text(scenario.to_json())
        rc = main(["fleet", "--scenario", str(path), "--no-cache",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger"]["requests"] == 5

    def test_fleet_bad_gpu_spec_exits_2(self, capsys):
        rc = main(["fleet", "--gpus", "2x-GT240", "--no-cache"])
        assert rc == 2
        assert "bad fleet scenario" in capsys.readouterr().err

    def test_fleet_bad_budget_exits_2(self, capsys):
        rc = main(["fleet", "--error-budget", "nan", "--no-cache"])
        assert rc == 2
        assert "finite fraction" in capsys.readouterr().err

    def test_fleet_bad_scenario_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"gpus": ["GT240"], "warp": 9}))
        rc = main(["fleet", "--scenario", str(path), "--no-cache"])
        assert rc == 2
        assert "bad fleet scenario" in capsys.readouterr().err
