"""Unit tests for GPU configurations and the XML interface."""

import pytest

from repro.sim.config import GPUConfig, gt240, gtx580, preset


class TestPresets:
    def test_gt240_matches_table2(self):
        cfg = gt240()
        assert cfg.n_cores == 12
        assert cfg.max_threads_per_core == 768
        assert cfg.n_fp_lanes == 8
        assert cfg.uncore_clock_hz == 550e6
        assert cfg.shader_to_uncore == 2.47
        assert cfg.max_warps_per_core == 24
        assert not cfg.has_scoreboard
        assert not cfg.has_l2
        assert cfg.process_nm == 40

    def test_gtx580_matches_table2(self):
        cfg = gtx580()
        assert cfg.n_cores == 16
        assert cfg.max_threads_per_core == 1536
        assert cfg.n_fp_lanes == 32
        assert cfg.uncore_clock_hz == 882e6
        assert cfg.shader_to_uncore == 2.0
        assert cfg.max_warps_per_core == 48
        assert cfg.has_scoreboard
        assert cfg.l2_size == 768 * 1024
        assert cfg.process_nm == 40

    def test_gt240_clusters(self):
        cfg = gt240()
        assert cfg.n_clusters == 4 and cfg.cores_per_cluster == 3

    def test_preset_lookup(self):
        assert preset("gt240").name == "GT240"
        assert preset("GTX580").name == "GTX580"
        with pytest.raises(KeyError):
            preset("GT9999")

    def test_shader_clock(self):
        assert gt240().shader_clock_hz == pytest.approx(550e6 * 2.47)

    def test_fu_cycles_per_warp(self):
        assert gt240().fu_cycles_per_warp == 4   # 32 threads over 8 lanes
        assert gtx580().fu_cycles_per_warp == 1

    def test_dram_bandwidth(self):
        # GT240: 128-bit bus at 850 MHz QDR = 54.4 GB/s
        assert gt240().dram_bandwidth_bytes_per_s == pytest.approx(54.4e9)


class TestValidation:
    def test_rejects_non_power_of_two_warp(self):
        with pytest.raises(ValueError):
            gt240().scaled(warp_size=24)

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            gt240().scaled(n_clusters=0)

    def test_rejects_l2_without_size(self):
        with pytest.raises(ValueError):
            gt240().scaled(has_l2=True, l2_size=0)

    def test_rejects_bad_segment(self):
        with pytest.raises(ValueError):
            gt240().scaled(coalesce_segment_bytes=100)

    def test_rejects_tiny_thread_capacity(self):
        with pytest.raises(ValueError):
            gt240().scaled(max_threads_per_core=16)


class TestScaling:
    def test_scaled_returns_copy(self):
        base = gt240()
        mod = base.scaled(n_clusters=8)
        assert base.n_clusters == 4 and mod.n_clusters == 8

    def test_scaled_preserves_rest(self):
        mod = gt240().scaled(n_clusters=8)
        assert mod.max_warps_per_core == 24


class TestXML:
    def test_roundtrip_preserves_everything(self):
        for cfg in (gt240(), gtx580()):
            restored = GPUConfig.from_xml(cfg.to_xml())
            assert restored == cfg

    def test_roundtrip_custom(self):
        cfg = gt240().scaled(n_clusters=6, has_scoreboard=True,
                             smem_size=32 * 1024)
        restored = GPUConfig.from_xml(cfg.to_xml())
        assert restored.n_clusters == 6
        assert restored.has_scoreboard
        assert restored.smem_size == 32 * 1024

    def test_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            GPUConfig.from_xml("<not_a_config/>")

    def test_rejects_unknown_param(self):
        xml = '<gpu_config name="x"><param name="bogus" value="1"/></gpu_config>'
        with pytest.raises(ValueError):
            GPUConfig.from_xml(xml)
