"""Tests for the experiment runner module (__main__ dispatch)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.__main__ import main


class TestDispatch:
    def test_unknown_experiment_exits(self, monkeypatch):
        monkeypatch.setattr("sys.argv", ["experiments", "nosuch"])
        with pytest.raises(SystemExit, match="unknown experiment"):
            main()

    def test_single_experiment_runs(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.argv", ["experiments", "table2"])
        main()
        out = capsys.readouterr().out
        assert "===== table2 =====" in out
        assert "GT240" in out

    def test_multiple_experiments_in_order(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.argv", ["experiments", "table2", "table5"])
        main()
        out = capsys.readouterr().out
        assert out.index("table2") < out.index("table5")

    def test_every_registered_module_has_format(self):
        for name, module in ALL_EXPERIMENTS.items():
            assert hasattr(module, "format_table"), name
