"""Tests for the statistical power model and the Section II comparison."""

import numpy as np
import pytest

from repro.core.statmodel import (FEATURES, StatisticalPowerModel,
                                  evaluate_statistical, feature_vector)
from repro.experiments import exp_statmodel
from repro.sim import gt240, gtx580
from repro.sim.activity import ActivityReport


class TestFeatureVector:
    def test_intercept_first(self):
        act = ActivityReport()
        act.runtime_s = 1.0
        vec = feature_vector(act)
        assert vec[0] == 1.0
        assert len(vec) == len(FEATURES) + 1

    def test_rates_not_counts(self):
        act = ActivityReport()
        act.runtime_s = 2.0
        act.fp_ops = 10.0
        vec = feature_vector(act)
        idx = 1 + FEATURES.index("fp_ops")
        assert vec[idx] == 5.0


@pytest.fixture(scope="module")
def trained_model():
    return StatisticalPowerModel.fit(gt240(),
                                     exp_statmodel.TRAIN_KERNELS,
                                     seed=41)


class TestFit:
    def test_training_metadata(self, trained_model):
        assert trained_model.trained_on == "GT240"
        assert len(trained_model.training_kernels) == \
            len(exp_statmodel.TRAIN_KERNELS)

    def test_intercept_near_idle_power(self, trained_model):
        """The constant term absorbs static + idle power (~20-30 W)."""
        assert 10 < trained_model.weights[0] < 35

    def test_accurate_on_training_card(self, trained_model):
        ev = evaluate_statistical(trained_model, gt240(),
                                  exp_statmodel.HELDOUT_KERNELS)
        assert ev.average_error < 0.08

    def test_fails_to_transfer(self, trained_model):
        """The paper's Section II claim: measured models lack 'the
        capability to make accurate predictions about GPUs with other
        architectural parameters'."""
        ev = evaluate_statistical(trained_model, gtx580(),
                                  exp_statmodel.HELDOUT_KERNELS)
        assert ev.average_error > 0.4

    def test_prediction_is_scalar_watts(self, trained_model):
        act = ActivityReport()
        act.runtime_s = 1e-4
        act.fp_ops = 1e6
        p = trained_model.predict(act)
        assert isinstance(p, float)
        assert 0 < p < 200


class TestComparisonExperiment:
    @pytest.fixture(scope="class")
    def comparison(self):
        return exp_statmodel.run()

    def test_statistical_wins_at_home(self, comparison):
        assert (comparison.stat_heldout_gt240.average_error
                < comparison.gpusimpow_gt240.average_error)

    def test_gpusimpow_wins_on_transfer(self, comparison):
        assert (comparison.gpusimpow_gtx580.average_error
                < 0.5 * comparison.stat_transfer_gtx580.average_error)

    def test_gpusimpow_consistent_across_cards(self, comparison):
        a = comparison.gpusimpow_gt240.average_error
        b = comparison.gpusimpow_gtx580.average_error
        assert abs(a - b) < 0.08

    def test_format(self, comparison):
        text = exp_statmodel.format_table(comparison)
        assert "statistical" in text and "GPUSimPow" in text
