"""Tests for the GPUSimPow facade (the Fig. 1 pipeline)."""

import pytest

from repro import GPUSimPow, gt240, gtx580
from tests.conftest import build_vecadd_launch


class TestArchitectureReport:
    def test_fields(self):
        arch = GPUSimPow(gt240()).architecture()
        assert arch.name == "GT240"
        assert arch.area_mm2 > 0
        assert arch.static_power_w > 0
        assert arch.peak_dynamic_w > arch.static_power_w

    def test_bigger_chip_bigger_numbers(self):
        small = GPUSimPow(gt240()).architecture()
        big = GPUSimPow(gtx580()).architecture()
        assert big.area_mm2 > small.area_mm2
        assert big.static_power_w > small.static_power_w


class TestRun:
    def test_end_to_end(self):
        launch, x, y = build_vecadd_launch()
        result = GPUSimPow(gt240()).run(launch)
        assert result.kernel_name == "tiny_vecadd"
        assert result.runtime_s > 0
        assert result.chip_total_w == pytest.approx(
            result.chip_static_w + result.chip_dynamic_w)
        assert result.card_total_w > result.chip_total_w
        assert result.energy_j > 0

    def test_summary_keys(self):
        launch, _, _ = build_vecadd_launch()
        summary = GPUSimPow(gt240()).run(launch).summary()
        assert set(summary) == {"runtime_s", "static_w", "dynamic_w",
                                "chip_total_w", "dram_w", "card_total_w"}

    def test_rerun_from_cached_activity(self):
        launch, _, _ = build_vecadd_launch()
        sim = GPUSimPow(gt240())
        first = sim.run(launch)
        second = sim.run(launch, activity=first.activity)
        assert second.chip_dynamic_w == pytest.approx(first.chip_dynamic_w)
        assert second.chip_static_w == pytest.approx(first.chip_static_w)

    def test_dynamic_power_below_peak(self, launches):
        sim = GPUSimPow(gt240())
        arch = sim.architecture()
        for name in ("BlackScholes", "matrixMul", "vectorAdd"):
            result = sim.run(launches[name])
            assert result.chip_dynamic_w < arch.peak_dynamic_w

    def test_compute_kernel_burns_more_than_streaming(self, launches):
        sim = GPUSimPow(gt240())
        compute = sim.run(launches["BlackScholes"])
        streaming = sim.run(launches["bfs2"])
        assert compute.chip_dynamic_w > streaming.chip_dynamic_w

    def test_power_profile_tree_shape(self, blackscholes_result_gt240):
        gpu = blackscholes_result_gt240.power.gpu
        names = {n.name for n in gpu.walk()}
        for expected in ("Cores", "NoC", "Memory Controller",
                         "PCIe Controller", "WCU", "Register File",
                         "Execution Units", "LDSTU", "Undiff. Core",
                         "Base Power"):
            assert expected in names

    def test_gtx580_has_l2_node(self, launches):
        result = GPUSimPow(gtx580()).run(launches["vectorAdd"])
        assert result.power.gpu.find("L2 Cache") is not None
