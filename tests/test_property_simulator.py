"""Property-based tests over randomly generated kernels.

Hypothesis builds small random SIMT kernels (straight-line arithmetic,
one divergent if/else region, global loads/stores) and checks simulator
invariants that must hold for *any* program:

* functional results are identical across architectures (GT240, GTX580,
  16-wide warps) and warp scheduling policies -- timing models must
  never change values;
* activity counters stay internally consistent;
* the simulation always terminates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Dim3, KernelBuilder, KernelLaunch, Sreg
from repro.sim import gt240, gtx580, simulate

N = 128          # threads
GMEM = 1024

#: (opcode, arity) pool for random arithmetic bodies; ops chosen to stay
#: finite on arbitrary inputs.
OP_POOL = [
    ("iadd", 2), ("isub", 2), ("imul", 2), ("and_", 2), ("or_", 2),
    ("xor", 2), ("shr", 2), ("imin", 2), ("imax", 2),
    ("fadd", 2), ("fsub", 2), ("fmul", 2), ("fmin", 2), ("fmax", 2),
    ("iabs", 1), ("fneg", 1), ("fabs", 1),
]


@st.composite
def random_kernels(draw):
    """A random but well-formed kernel over 6 registers."""
    kb = KernelBuilder("fuzz")
    regs = kb.regs(6)
    p = kb.pred()
    kb.mov(regs[0], Sreg("gtid"))
    kb.ldg(regs[1], regs[0], offset=0)
    kb.mov(regs[2], draw(st.integers(-100, 100)))
    kb.mov(regs[3], draw(st.integers(1, 31)))

    def emit_body(count):
        for _ in range(count):
            op, arity = draw(st.sampled_from(OP_POOL))
            dst = regs[draw(st.integers(1, 5))]
            srcs = [regs[draw(st.integers(0, 5))] for _ in range(arity)]
            getattr(kb, op)(dst, *srcs)

    emit_body(draw(st.integers(1, 6)))
    # One divergent region: threshold splits the warp.
    threshold = draw(st.integers(0, N))
    kb.setp("lt", p, regs[0], threshold)
    kb.bra("else_", pred=p, sense=False)
    emit_body(draw(st.integers(1, 4)))
    kb.jmp("join")
    kb.label("else_")
    emit_body(draw(st.integers(1, 4)))
    kb.label("join")
    emit_body(draw(st.integers(0, 3)))
    kb.stg(regs[draw(st.integers(1, 5))], regs[0], offset=N)
    kb.exit()
    return kb.build()


def launch_for(kernel):
    rng = np.random.default_rng(1234)
    data = rng.integers(-1000, 1000, N).astype(np.float64)
    return KernelLaunch(kernel, Dim3(2), Dim3(N // 2),
                        globals_init={0: data}, gmem_words=GMEM)


class TestCrossConfigEquivalence:
    @given(kernel=random_kernels())
    @settings(max_examples=25, deadline=None)
    def test_results_identical_across_architectures(self, kernel):
        launch = launch_for(kernel)
        configs = [gt240(), gtx580(), gt240().scaled(warp_size=16)]
        results = [simulate(cfg, launch).gmem[N:2 * N] for cfg in configs]
        for other in results[1:]:
            assert np.array_equal(results[0], other)

    @given(kernel=random_kernels())
    @settings(max_examples=25, deadline=None)
    def test_results_identical_across_schedulers(self, kernel):
        launch = launch_for(kernel)
        results = [
            simulate(gt240().scaled(warp_scheduler=p), launch).gmem[N:2 * N]
            for p in ("rr", "gto", "two_level")
        ]
        for other in results[1:]:
            assert np.array_equal(results[0], other)


@st.composite
def loop_kernels(draw):
    """A random kernel with a data-dependent (bounded) loop."""
    kb = KernelBuilder("fuzzloop")
    regs = kb.regs(5)
    p = kb.pred()
    kb.mov(regs[0], Sreg("gtid"))
    kb.ldg(regs[1], regs[0], offset=0)
    # trip count in [1, 8], derived from the thread id
    modulus = draw(st.integers(2, 8))
    kb.imod(regs[2], regs[0], modulus)
    kb.iadd(regs[2], regs[2], 1)
    kb.mov(regs[3], 0)
    kb.label("loop")
    op, _ = draw(st.sampled_from([("iadd", 2), ("ixor", 2)]))
    if op == "iadd":
        kb.iadd(regs[3], regs[3], regs[1])
    else:
        kb.xor(regs[3], regs[3], regs[1])
    kb.isub(regs[2], regs[2], 1)
    kb.setp("gt", p, regs[2], 0)
    kb.bra("loop", pred=p)
    kb.stg(regs[3], regs[0], offset=N)
    kb.exit()
    return kb.build()


class TestLoopKernels:
    @given(kernel=loop_kernels())
    @settings(max_examples=20, deadline=None)
    def test_loops_identical_across_configs(self, kernel):
        launch = launch_for(kernel)
        a = simulate(gt240(), launch).gmem[N:2 * N]
        b = simulate(gtx580(), launch).gmem[N:2 * N]
        c = simulate(gt240().scaled(warp_scheduler="gto"),
                     launch).gmem[N:2 * N]
        assert np.array_equal(a, b)
        assert np.array_equal(a, c)

    @given(kernel=loop_kernels())
    @settings(max_examples=10, deadline=None)
    def test_divergent_loops_push_and_pop_balanced(self, kernel):
        out = simulate(gt240(), launch_for(kernel))
        act = out.activity
        # Every pushed token is eventually popped, plus each warp's base
        # token pops when its last lane exits.
        assert act.stack_pops == act.stack_pushes + act.warps_launched


class TestActivityInvariants:
    @given(kernel=random_kernels())
    @settings(max_examples=25, deadline=None)
    def test_counters_consistent(self, kernel):
        out = simulate(gt240(), launch_for(kernel))
        act = out.activity
        act.validate()
        assert act.issued_instructions >= len(kernel) - 2
        assert act.stack_pops <= act.stack_pushes + act.warps_launched
        assert act.threads_launched == N
        # lane ops never exceed threads x issued instructions
        assert act.int_ops + act.fp_ops + act.sfu_ops <= \
            act.issued_instructions * 32

    @given(kernel=random_kernels())
    @settings(max_examples=15, deadline=None)
    def test_power_evaluation_always_physical(self, kernel):
        from repro.core import GPUSimPow
        result = GPUSimPow(gt240()).run(launch_for(kernel))
        assert result.chip_dynamic_w >= 0
        assert result.chip_static_w > 0
        for node in result.power.gpu.walk():
            assert node.static_w >= 0
            assert node.dynamic_w >= 0
