"""Unit tests for the GDDR5 timing model and the NoC."""

import pytest

from repro.sim.config import gt240
from repro.sim.dram import DRAMChannel, DRAMSystem
from repro.sim.noc import NoC


def make_channel():
    cfg = gt240()
    return DRAMChannel(cfg, 0, shader_cycles_per_dram_cycle=1.0), cfg


class TestDRAMChannel:
    def test_first_access_activates(self):
        ch, _ = make_channel()
        ch.access(0, now=0.0, is_write=False)
        assert ch.activates == 1 and ch.precharges == 0
        assert ch.reads == 1

    def test_row_hit_no_second_activate(self):
        ch, cfg = make_channel()
        ch.access(0, 0.0, False)
        ch.access(64, 0.0, False)  # same 2 KB row
        assert ch.activates == 1

    def test_row_miss_precharges(self):
        ch, cfg = make_channel()
        ch.access(0, 0.0, False)
        # Same bank, different row: + banks*row_bytes stride.
        ch.access(cfg.dram_banks * cfg.dram_row_bytes, 0.0, False)
        assert ch.activates == 2 and ch.precharges == 1

    def test_different_banks_interleave(self):
        ch, cfg = make_channel()
        ch.access(0, 0.0, False)
        ch.access(cfg.dram_row_bytes, 0.0, False)  # next bank
        assert ch.activates == 2 and ch.precharges == 0

    def test_row_hit_faster_than_miss(self):
        ch, cfg = make_channel()
        t_first = ch.access(0, 0.0, False)
        ch2, _ = make_channel()
        ch2.access(0, 0.0, False)
        t_hit = ch2.access(64, t_first, False)
        ch3, cfg3 = make_channel()
        ch3.access(0, 0.0, False)
        t_miss = ch3.access(cfg3.dram_banks * cfg3.dram_row_bytes,
                            t_first, False)
        assert t_hit - t_first < t_miss - t_first

    def test_bus_serialises_bursts(self):
        ch, _ = make_channel()
        t1 = ch.access(0, 0.0, False)
        t2 = ch.access(64, 0.0, False)
        assert t2 > t1

    def test_column_commands_pipeline(self):
        """Open-row accesses stream at tCCD, not tCAS (the bug the
        reproduction originally had: CAS paid serially per burst)."""
        ch, cfg = make_channel()
        ch.access(0, 0.0, False)
        times = [ch.access(64 * i, 0.0, False) for i in range(1, 10)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Streaming gap must be ~tCCD (2 cycles), far below tCAS (12).
        assert max(gaps) <= cfg.dram_t_ccd + 1

    def test_write_counted(self):
        ch, _ = make_channel()
        ch.access(0, 0.0, True)
        assert ch.writes == 1 and ch.reads == 0


class TestDRAMSystem:
    def test_channel_interleaving(self):
        cfg = gt240()
        sys = DRAMSystem(cfg, cfg.shader_clock_hz)
        a = sys.channel_for(0)
        b = sys.channel_for(cfg.l2_line)
        assert a is not b

    def test_refresh_count_scales_with_time(self):
        cfg = gt240()
        sys = DRAMSystem(cfg, cfg.shader_clock_hz)
        r1 = sys.refresh_count(1e-3)
        r2 = sys.refresh_count(2e-3)
        assert r2 == pytest.approx(2 * r1)
        # 1 ms / 7.8 us * 2 channels ~= 256
        assert r1 == pytest.approx(1e-3 / 7.8e-6 * 2)

    def test_aggregate_counters(self):
        cfg = gt240()
        sys = DRAMSystem(cfg, cfg.shader_clock_hz)
        for i in range(8):
            sys.access(i * 128, 0.0, is_write=(i % 2 == 0))
        assert sys.reads + sys.writes == 8


class TestNoC:
    def test_flit_segmentation(self):
        noc = NoC(gt240(), 0)
        assert noc.flits_for(32) == 2    # header + 1 data
        assert noc.flits_for(128) == 5   # header + 4 data
        assert noc.flits_for(1) == 2

    def test_send_counts_flits(self):
        noc = NoC(gt240(), 0)
        noc.send(0, 128, 0.0)
        assert noc.flits == 5 and noc.transfers == 1

    def test_port_contention_serialises(self):
        noc = NoC(gt240(), 0)
        t1 = noc.send(0, 128, 0.0)
        t2 = noc.send(0, 128, 0.0)   # same port, same time
        t3 = noc.send(1, 128, 0.0)   # other port unaffected
        assert t2 > t1
        assert t3 == t1

    def test_latency_positive(self):
        noc = NoC(gt240(), 0)
        assert noc.send(0, 8, 100.0) > 100.0
