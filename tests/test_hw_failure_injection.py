"""Failure-injection tests for the measurement chain.

The paper spends Section IV-A justifying its testbed against naive
methodologies (whole-PC measurement, missed rails, assumed-constant
voltages, low sampling rates).  These tests inject exactly those flaws
into our simulated chain and verify that the measurement degrades the
way the paper argues -- i.e. the testbed model is sensitive to the
errors the real testbed was built to avoid.
"""

import numpy as np
import pytest

from repro.hw.measure import MeasurementTool
from repro.hw.sensors import ResistiveDivider, ShuntMonitor
from repro.hw.testbed import MeasurementCapture, Testbed
from repro.hw.virtual_gpu import VirtualGPU
from repro.sim.activity import ActivityReport
from repro.sim.config import gt240


def busy_activity():
    act = ActivityReport()
    act.runtime_s = 2e-4
    act.fp_ops = 5e5
    act.int_ops = 1e5
    act.issued_instructions = 5e4
    act.active_cores = 12
    act.active_clusters = 4
    act.blocks_launched = 12
    act.dram_reads = 2e4
    act.mem_transactions = 1e4
    return act


def capture_with(seed=5):
    vg = VirtualGPU(gt240())
    bed = Testbed(vg, seed=seed)
    return vg, bed.run_session([("k", busy_activity(), 100)])


class TestMissedRail:
    def test_dropping_the_3v3_rail_underestimates(self):
        """Paper: prior work 'do[es] not measure the power provided via
        the graphics card slot' -- dropping any rail loses real power."""
        vg, cap = capture_with()
        truth = vg.kernel_power_w(busy_activity())
        partial = MeasurementCapture(
            rails=[r for r in cap.rails if r.name != "slot3V3"],
            windows=cap.windows,
            sample_rate_hz=cap.sample_rate_hz,
            duration_s=cap.duration_s,
        )
        measured = MeasurementTool(partial).kernel_power("k")
        assert measured < 0.9 * truth


class TestAssumedConstantVoltage:
    def test_nominal_voltage_assumption_biases(self):
        """Paper: prior work 'measure[s] only current and assume[s]
        constant voltages'; rails sag under load, so assuming 12.00 V
        overestimates the sagged rail's power."""
        vg, cap = capture_with()
        tool = MeasurementTool(cap)
        proper = tool.kernel_power("k")
        assumed = 0.0
        for rail in cap.rails:
            amps = rail.monitor.current_from_output(rail.i_samples)
            assumed_power = rail.nominal_v * amps
            assumed += assumed_power
        mask = (tool.times_s >= cap.windows[0].start_s) & \
               (tool.times_s < cap.windows[0].end_s)
        assumed_avg = float(assumed[mask].mean())
        assert assumed_avg > proper
        # The bias is real but sub-5% here (mild sag) -- the point is the
        # direction, and that the full chain removes it.
        assert (assumed_avg - proper) / proper < 0.05


class TestLowSamplingRate:
    def test_short_transient_invisible_at_low_rate(self):
        """Paper: low sampling frequencies 'prevent ... measuring
        short-term power variations'.  A 1 ms burst is fully resolved at
        31.2 kHz but aliases badly when decimated to ~30 Hz."""
        vg, cap = capture_with()
        tool = MeasurementTool(cap)
        w = cap.windows[0]
        full_avg = tool.window_average(w.start_s, w.end_s)
        # Decimate to one sample per 33 ms.
        step = int(cap.sample_rate_hz / 30)
        decimated = tool.power_waveform[::step]
        times = tool.times_s[::step]
        mask = (times >= w.start_s) & (times < w.end_s)
        assert mask.sum() <= 2  # the whole kernel window ~ one sample


class TestBrokenChannel:
    def test_dead_current_channel_detectable(self):
        vg, cap = capture_with()
        dead = cap.rails[0]
        dead_rail = type(dead)(
            name=dead.name, nominal_v=dead.nominal_v,
            divider=dead.divider, monitor=dead.monitor,
            v_samples=dead.v_samples,
            i_samples=np.zeros_like(dead.i_samples),
        )
        broken = MeasurementCapture(
            rails=[dead_rail] + list(cap.rails[1:]),
            windows=cap.windows,
            sample_rate_hz=cap.sample_rate_hz,
            duration_s=cap.duration_s,
        )
        measured = MeasurementTool(broken).kernel_power("k")
        truth = vg.kernel_power_w(busy_activity())
        assert measured < 0.5 * truth  # grossly wrong -> detectable

    def test_saturated_monitor_clips_high_power(self):
        """A shunt monitor driven past the DAQ range clips: measured
        power plateaus below truth for large loads."""
        monitor = ShuntMonitor(shunt_ohm=20e-3)
        big_current = np.full(100, 40.0)          # 40 A -> 16 V out
        from repro.hw.daq import DAQ
        daq = DAQ(np.random.default_rng(0))
        sampled = daq.sample(monitor.output(big_current))
        recovered = monitor.current_from_output(sampled)
        assert recovered.max() < 15.0             # clipped well below 40 A
