"""Integration tests for the core and whole-GPU simulation."""

import numpy as np
import pytest

from repro.isa import Dim3, KernelBuilder, KernelLaunch, Sreg
from repro.sim import GPU, SimulationDeadlock, gt240, gtx580, simulate
from tests.conftest import build_vecadd_launch


class TestFunctionalExecution:
    def test_vecadd_both_gpus(self):
        launch, x, y = build_vecadd_launch()
        for cfg in (gt240(), gtx580()):
            out = simulate(cfg, launch)
            assert np.allclose(out.gmem[512:768], x + y)

    def test_partial_warp(self):
        # 40 threads: one full warp + one 8-lane warp.
        launch, x, y = build_vecadd_launch(n=40, block=40, grid=1)
        out = simulate(gt240(), launch)
        assert np.allclose(out.gmem[80:120], x + y)

    def test_predicated_store(self):
        kb = KernelBuilder("predstore")
        i, v = kb.regs(2)
        p = kb.pred()
        kb.mov(i, Sreg("gtid"))
        kb.mov(v, 7)
        kb.and_(v, i, 1)
        kb.setp("eq", p, v, 0)
        kb.mov(v, 1)
        kb.stg(v, i, offset=0, guard=(p, True))
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(64), gmem_words=128)
        out = simulate(gt240(), launch)
        assert out.gmem[0] == 1 and out.gmem[1] == 0

    def test_divergent_if_else(self):
        kb = KernelBuilder("ifelse")
        i, v = kb.regs(2)
        p = kb.pred()
        kb.mov(i, Sreg("gtid"))
        kb.setp("lt", p, i, 16)
        kb.bra("low", pred=p)
        kb.mov(v, 200)
        kb.jmp("join")
        kb.label("low")
        kb.mov(v, 100)
        kb.label("join")
        kb.stg(v, i, offset=0)
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(32), gmem_words=64)
        out = simulate(gt240(), launch)
        assert (out.gmem[:16] == 100).all() and (out.gmem[16:32] == 200).all()

    def test_loop_with_divergent_trip_counts(self):
        # Each thread loops tid+1 times accumulating 1.
        kb = KernelBuilder("varloop")
        i, acc, n = kb.regs(3)
        p = kb.pred()
        kb.mov(i, Sreg("gtid"))
        kb.iadd(n, i, 1)
        kb.mov(acc, 0)
        kb.label("loop")
        kb.iadd(acc, acc, 1)
        kb.isub(n, n, 1)
        kb.setp("gt", p, n, 0)
        kb.bra("loop", pred=p)
        kb.stg(acc, i, offset=0)
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(32), gmem_words=64)
        out = simulate(gt240(), launch)
        assert np.array_equal(out.gmem[:32], np.arange(1, 33))

    def test_smem_barrier_communication(self):
        kb = KernelBuilder("rotate", smem_words=32)
        tid, src, v = kb.regs(3)
        kb.mov(tid, Sreg("tid"))
        kb.sts(tid, tid)
        kb.bar()
        kb.iadd(src, tid, 1)
        kb.imod(src, src, 32)
        kb.lds(v, src)
        kb.stg(v, tid, offset=0)
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(32), gmem_words=64)
        out = simulate(gt240(), launch)
        expect = (np.arange(32) + 1) % 32
        assert np.array_equal(out.gmem[:32], expect)

    def test_constant_memory(self):
        kb = KernelBuilder("constread")
        i, z, c = kb.regs(3)
        kb.mov(i, Sreg("gtid"))
        kb.mov(z, 0)
        kb.ldc(c, z, offset=2)
        kb.stg(c, i, offset=0)
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(32),
                              const_init=np.array([1.0, 2.0, 42.0]),
                              gmem_words=64)
        out = simulate(gt240(), launch)
        assert (out.gmem[:32] == 42.0).all()


class TestScheduling:
    def test_blocks_fill_clusters_breadth_first(self):
        launch, _, _ = build_vecadd_launch(n=256, block=64)  # 4 blocks
        gpu = GPU(gt240())
        out = gpu.run(launch)
        assert out.activity.active_cores == 4
        assert out.activity.active_clusters == 4

    def test_more_blocks_than_cores(self):
        launch, x, y = build_vecadd_launch(n=2048, block=64)  # 32 blocks
        out = simulate(gt240(), launch)
        assert out.activity.active_cores == 12
        assert out.activity.blocks_launched == 32
        assert np.allclose(out.gmem[4096:4096 + 2048], x + y)

    def test_single_block_single_core(self):
        launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
        out = simulate(gt240(), launch)
        assert out.activity.active_cores == 1
        assert out.activity.active_clusters == 1

    def test_occupancy_limited_by_registers(self):
        kb = KernelBuilder("fat")
        regs = kb.regs(64)           # 64 regs x 256 threads = 16K regs
        kb.mov(regs[63], Sreg("gtid"))
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(256), gmem_words=64)
        gpu = GPU(gt240())
        gpu.cores[0].prepare(launch.kernel, launch,
                             launch.build_global_memory(), None)
        assert gpu.cores[0].max_concurrent_blocks == 1


class TestActivityReport:
    def test_counters_consistent(self, launches):
        out = simulate(gt240(), launches["BlackScholes"])
        act = out.activity
        act.validate()
        assert act.issued_instructions > 0
        assert act.fetches == act.issued_instructions
        assert act.runtime_s == pytest.approx(
            act.shader_cycles / gt240().shader_clock_hz)

    def test_lane_ops_bounded_by_threads(self, launches):
        out = simulate(gt240(), launches["vectorAdd"])
        act = out.activity
        n = act.threads_launched
        # vectorAdd: 1 fp op and 1 int-class op (MOV) per thread.
        assert act.fp_ops == n
        assert act.int_ops == n

    def test_divergence_counted(self, launches):
        out = simulate(gt240(), launches["bfs1"])
        assert out.activity.divergent_branches > 0
        assert out.activity.stack_pushes > 0

    def test_barrier_counted(self, launches):
        out = simulate(gt240(), launches["scalarProd"])
        assert out.activity.barriers > 0

    def test_scaled_preserves_rates(self, launches):
        out = simulate(gt240(), launches["vectorAdd"])
        act = out.activity
        scaled = act.scaled(10.0)
        assert scaled.fp_ops == act.fp_ops * 10
        assert scaled.runtime_s == act.runtime_s


class TestRobustness:
    def test_deadlock_detected(self):
        # A kernel where warp 0 waits at a barrier no one else reaches
        # cannot happen with our block-wide barriers, but a barrier with
        # a single warp must release immediately (not deadlock).
        kb = KernelBuilder("lonebar")
        kb.bar()
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(32), gmem_words=32)
        out = simulate(gt240(), launch)
        assert out.activity.barriers == 1

    def test_max_cycles_guard(self):
        kb = KernelBuilder("forever")
        r = kb.reg()
        p = kb.pred()
        kb.label("spin")
        kb.iadd(r, r, 1)
        kb.setp("ge", p, r, 0)
        kb.bra("spin", pred=p)    # always taken
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(32), gmem_words=32)
        with pytest.raises(RuntimeError, match="exceeded"):
            GPU(gt240()).run(launch, max_cycles=10_000)

    def test_oob_shared_access_raises(self):
        kb = KernelBuilder("oob", smem_words=16)
        tid, v = kb.regs(2)
        kb.mov(tid, Sreg("tid"))
        kb.lds(v, tid)   # tid up to 31 >= 16 words
        kb.exit()
        launch = KernelLaunch(kb.build(), Dim3(1), Dim3(32), gmem_words=32)
        with pytest.raises(IndexError):
            simulate(gt240(), launch)

    def test_ipc_property(self, launches):
        out = simulate(gt240(), launches["matrixMul"])
        assert 0 < out.ipc < gt240().n_cores


class TestDeterminism:
    def test_same_launch_same_cycles(self):
        launch, _, _ = build_vecadd_launch()
        a = simulate(gt240(), launch)
        b = simulate(gt240(), launch)
        assert a.cycles == b.cycles
        assert a.activity.as_dict() == b.activity.as_dict()
