"""Tests for the fleet layer: load generation, dispatch, ledgers,
conservation, and the degenerate single-chip equivalence.

The two load-bearing properties (ISSUE 9 acceptance criteria):

* **Conservation** -- the fleet rollup equals the sum of the per-GPU
  per-phase ledgers *bit-exactly* (not approximately), for every
  phase column, across seeds and fleet shapes.
* **Degenerate equivalence** -- a 1-GPU fleet's active energy equals
  the single-chip ``GPUSimPow`` energy for the same request stream,
  float for float.
"""

import json
import math

import pytest

from repro import GPUSimPow
from repro.fleet import (DiurnalCurve, FleetReport, FleetScenario,
                         TenantProfile, dispatch, generate_requests,
                         parse_gpu_spec, resolve_costs, run_scenario)
from repro.fleet.ledger import PHASES
from repro.sim import gt240, gtx580
from repro.workloads import all_kernel_launches

#: Cheap scenario for pipeline tests: surrogate-resolved costs, small
#: trace, mixed fleet.
def small_scenario(**overrides):
    fields = dict(name="t", gpus=["GTX580", "GT240"], duration_s=3600.0,
                  n_requests=60, seed=7, error_budget=0.10)
    fields.update(overrides)
    return FleetScenario(**fields)


def flat_tenant(name="flat", mix=None, batch=1000, qps=1.0):
    return TenantProfile(name=name,
                         curve=DiurnalCurve(base_qps=qps, peak_qps=qps),
                         mix=mix or {"vectorAdd": 1.0}, batch=batch)


class TestLoadGenerator:
    def test_deterministic(self):
        tenants = [flat_tenant(), flat_tenant(name="other",
                                              mix={"scalarProd": 1.0})]
        a = generate_requests(tenants, 3600.0, 100, seed=3)
        b = generate_requests(tenants, 3600.0, 100, seed=3)
        assert [(r.arrival_s, r.tenant, r.kernel, r.batch) for r in a] \
            == [(r.arrival_s, r.tenant, r.kernel, r.batch) for r in b]

    def test_seed_changes_trace(self):
        tenants = [flat_tenant()]
        a = generate_requests(tenants, 3600.0, 50, seed=0)
        b = generate_requests(tenants, 3600.0, 50, seed=1)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_count_and_ordering(self):
        reqs = generate_requests([flat_tenant()], 3600.0, 77, seed=0)
        assert len(reqs) == 77
        assert [r.index for r in reqs] == list(range(77))
        arrivals = [r.arrival_s for r in reqs]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t <= 3600.0 for t in arrivals)

    def test_rate_split_follows_integrated_rate(self):
        # 3:1 flat-rate tenants -> largest-remainder 3:1 request split.
        tenants = [flat_tenant(name="big", qps=3.0),
                   flat_tenant(name="small", qps=1.0)]
        reqs = generate_requests(tenants, 3600.0, 100, seed=0)
        big = sum(r.tenant == "big" for r in reqs)
        assert big == 75

    def test_diurnal_peak_clusters_arrivals(self):
        curve = DiurnalCurve(base_qps=0.1, peak_qps=5.0, peak_hour=12.0)
        tenant = TenantProfile(name="t", curve=curve,
                               mix={"vectorAdd": 1.0})
        reqs = generate_requests([tenant], 86400.0, 400, seed=0)
        near = sum(1 for r in reqs
                   if 8 * 3600 <= r.arrival_s <= 16 * 3600)
        assert near > 200  # a uniform spread would put ~133 there

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            generate_requests([flat_tenant(), flat_tenant()], 10.0, 5)

    def test_mix_validation(self):
        with pytest.raises(ValueError, match="mix"):
            TenantProfile(name="x", mix={})
        with pytest.raises(ValueError, match="non-negative"):
            TenantProfile(name="x", mix={"vectorAdd": -1.0})


class TestGpuSpec:
    def test_counts_and_names(self):
        assert parse_gpu_spec("2xGTX580,GT240") == \
            ["GTX580", "GTX580", "GT240"]

    def test_star_separator_and_spaces(self):
        assert parse_gpu_spec(" 2 * gt240 ") == ["GT240", "GT240"]

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown GPU preset"):
            parse_gpu_spec("3xRTX4090")

    def test_malformed(self):
        with pytest.raises(ValueError, match="bad GPU spec"):
            parse_gpu_spec("2x-GT240")

    def test_empty_spec(self):
        with pytest.raises(ValueError, match="names no GPUs"):
            parse_gpu_spec(" , ")


class TestDispatch:
    def test_queueing_under_overload(self):
        # One GPU, back-to-back arrivals, second must wait for first.
        tenant = flat_tenant(batch=10_000_000)
        reqs = generate_requests([tenant], 10.0, 4, seed=0)
        costs = resolve_costs([("GT240", "vectorAdd")],
                              error_budget=0.10, cache=None)
        schedule = dispatch(reqs, ["GT240"], costs)
        service = costs[("GT240", "vectorAdd")].runtime_s * 10_000_000
        assert service > 1.0  # overloaded by construction
        waits = [p.wait_s for p in schedule.placements]
        assert waits[0] == 0.0
        assert any(w > 0 for w in waits[1:])
        ends = [p.end_s for p in schedule.placements]
        assert ends == sorted(ends)

    def test_missing_cost_raises(self):
        reqs = generate_requests([flat_tenant()], 10.0, 2, seed=0)
        with pytest.raises(KeyError, match="no resolved cost"):
            dispatch(reqs, ["GT240"], {})


class TestConservation:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_rollup_is_bit_exact_sum_of_per_gpu_ledgers(self, seed):
        report = run_scenario(small_scenario(seed=seed), cache=None)
        ledger = report.ledger
        for phase in PHASES + ("active_j", "busy_s"):
            total = sum(getattr(g, phase) for g in ledger.gpus)
            assert getattr(ledger, phase) == total  # bit-exact, no tol
        assert ledger.total_j == sum(g.total_j for g in ledger.gpus)
        assert ledger.requests == sum(g.requests for g in ledger.gpus)

    def test_total_is_idle_plus_active(self):
        report = run_scenario(small_scenario(), cache=None)
        for g in report.ledger.gpus:
            assert g.total_j == g.idle_j + g.active_j

    def test_phase_attribution_is_exhaustive(self):
        # The remainder convention: phases re-sum to the active total
        # (to accumulation-order rounding, not bit-exactness).
        report = run_scenario(small_scenario(), cache=None)
        ledger = report.ledger
        resum = ledger.static_j + ledger.compute_j + ledger.memory_j
        assert resum == pytest.approx(ledger.active_j, rel=1e-12)


class TestDegenerateSingleChip:
    def test_one_gpu_fleet_matches_single_chip_energy_exactly(self):
        # Exact (cycle-backend) costs on a 1-GPU fleet: the ledger's
        # active energy must equal a per-request single-chip GPUSimPow
        # accumulation, float for float.
        tenants = [flat_tenant(mix={"vectorAdd": 2.0, "scalarProd": 1.0},
                               batch=500)]
        scenario = FleetScenario(name="degenerate", gpus=["GT240"],
                                 tenants=tenants, duration_s=600.0,
                                 n_requests=12, seed=2,
                                 error_budget=None)
        report = run_scenario(scenario, cache=None)

        sim = GPUSimPow(gt240())
        launches = all_kernel_launches()
        energy = {k: sim.run(launches[k]).energy_j
                  for k in ("vectorAdd", "scalarProd")}
        requests = generate_requests(tenants, 600.0, 12, seed=2)
        expected = 0.0
        for req in requests:
            expected += energy[req.kernel] * req.batch

        gpu, = report.ledger.gpus
        assert gpu.active_j == expected  # bit-exact
        assert report.ledger.active_j == expected

    def test_surrogate_costs_also_degenerate_exactly(self):
        # Same property through the ladder: whatever rung resolves the
        # costs, the fleet accumulation adds nothing of its own.
        scenario = FleetScenario(name="degenerate", gpus=["GTX580"],
                                 tenants=[flat_tenant(batch=1000)],
                                 duration_s=600.0, n_requests=10,
                                 seed=5, error_budget=0.10)
        report = run_scenario(scenario, cache=None)
        costs = resolve_costs([("GTX580", "vectorAdd")],
                              error_budget=0.10, cache=None)
        per_req = costs[("GTX580", "vectorAdd")].energy_j * 1000
        expected = 0.0
        for _ in range(10):
            expected += per_req
        assert report.ledger.active_j == expected


class TestScenarioAcceptance:
    def test_seeded_1000_request_scenario(self):
        # The ISSUE 9 acceptance scenario: 1000 requests, >= 4 virtual
        # GPUs, deterministic bill, >= 90% of requests resolved below
        # the cycle tier.
        scenario = FleetScenario(
            gpus=["GTX580", "GTX580", "GT240", "GT240"],
            n_requests=1000, error_budget=0.10)
        first = run_scenario(scenario, cache=None)
        second = run_scenario(scenario, cache=None)
        assert first.requests == 1000
        assert len(first.ledger.gpus) == 4
        assert first.kwh == second.kwh
        assert first.cost_usd == second.cost_usd
        assert first.co2_kg == second.co2_kg
        assert first.ledger.total_j == second.ledger.total_j
        assert first.sub_cycle_fraction >= 0.90

    def test_bill_arithmetic(self):
        report = run_scenario(small_scenario(pue=1.5), cache=None)
        scen = report.scenario
        assert report.kwh == \
            report.ledger.total_j * 1.5 / 3.6e6
        assert report.cost_usd == \
            report.kwh * scen["price_usd_per_kwh"]
        assert report.co2_kg == report.kwh * scen["co2_kg_per_kwh"]

    def test_idle_power_dominates_lightly_loaded_fleet(self):
        # The paper's thesis at fleet scale: provisioned-but-idle
        # chips, not kernels, drive the bill at low utilization (a
        # 4-GPU fleet serving 200 requests over a full day).
        scenario = FleetScenario(
            gpus=["GTX580", "GTX580", "GT240", "GT240"],
            n_requests=200, error_budget=0.10)
        report = run_scenario(scenario, cache=None)
        assert report.ledger.utilization < 0.5
        assert report.ledger.idle_j > report.ledger.active_j

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="duration_s"):
            small_scenario(duration_s=0.0)
        with pytest.raises(ValueError, match="n_requests"):
            small_scenario(n_requests=0)
        with pytest.raises(ValueError, match="error_budget"):
            small_scenario(error_budget=float("nan"))
        with pytest.raises(ValueError, match="error_budget"):
            small_scenario(error_budget=-0.1)
        with pytest.raises(ValueError, match="pue"):
            small_scenario(pue=float("inf"))
        with pytest.raises(KeyError, match="unknown GPU preset"):
            small_scenario(gpus=["TPU"])


class TestSerialization:
    def test_scenario_roundtrip(self):
        scenario = small_scenario()
        restored = FleetScenario.from_json(scenario.to_json())
        assert restored.to_dict() == scenario.to_dict()

    def test_scenario_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FleetScenario"):
            FleetScenario.from_dict({"gpus": ["GT240"], "turbo": True})

    def test_report_roundtrip(self):
        report = run_scenario(small_scenario(), cache=None)
        restored = FleetReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.kwh == report.kwh
        assert restored.ledger.total_j == report.ledger.total_j

    def test_report_json_is_plain_data(self):
        report = run_scenario(small_scenario(), cache=None)
        payload = json.loads(report.to_json())
        assert payload["ledger"]["requests"] == report.requests
        assert not math.isnan(payload["kwh"])

    def test_format_mentions_the_bill(self):
        report = run_scenario(small_scenario(), cache=None)
        text = report.format()
        assert "kWh" in text and "CO2" in text
        assert "$" in text


class TestProvenance:
    def test_exact_resolution_reports_cycle(self):
        report = run_scenario(small_scenario(
            n_requests=10, error_budget=None,
            tenants=[flat_tenant(batch=10)]), cache=None)
        assert set(report.backend_requests) == {"cycle"}
        assert report.sub_cycle_fraction == 0.0

    def test_budgeted_resolution_stays_sub_cycle(self):
        report = run_scenario(small_scenario(), cache=None)
        assert report.sub_cycle_fraction == 1.0
        assert sum(report.backend_requests.values()) == report.requests
