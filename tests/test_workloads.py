"""Functional-correctness tests for all Table I workloads.

Every kernel is executed on the cycle-level simulator and its output
compared against an independent numpy reference -- the strongest
evidence that the performance substrate executes real programs, not
traces.
"""

import numpy as np
import pytest

from repro.sim import gt240, gtx580, simulate
from repro.workloads import (all_kernel_launches, benchmark_info,
                             benchmark_names, build_benchmark)
from repro.workloads import (backprop, bfs, blackscholes, heartwall, hotspot,
                             kmeans, matmul, mergesort, needle, pathfinder,
                             scalarprod, vectoradd)

CFG = gt240()


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(benchmark_names()) == 12

    def test_nineteen_kernels(self, launches):
        assert len(launches) == 19

    def test_fig6_kernel_names(self, launches):
        expected = {
            "backprop1", "backprop2", "bfs1", "bfs2", "BlackScholes",
            "heartwall", "hotspot", "kmeans1", "kmeans2", "matrixMul",
            "mergeSort1", "mergeSort2", "mergeSort3", "mergeSort4",
            "needle1", "needle2", "pathfinder", "scalarProd", "vectorAdd",
        }
        assert set(launches) == expected

    def test_table1_kernel_counts(self):
        counts = {"backprop": 2, "heartwall": 1, "kmeans": 2,
                  "pathfinder": 1, "bfs": 2, "hotspot": 1, "matmul": 1,
                  "blackscholes": 1, "mergesort": 4, "scalarprod": 1,
                  "vectoradd": 1, "needle": 2}
        for name, n in counts.items():
            assert benchmark_info(name).n_kernels == n
            assert len(build_benchmark(name)) == n

    def test_origins_match_table1(self):
        rodinia = {"backprop", "heartwall", "kmeans", "pathfinder", "bfs",
                   "hotspot", "needle"}
        sdk = {"matmul", "blackscholes", "mergesort", "scalarprod",
               "vectoradd"}
        for name in rodinia:
            assert benchmark_info(name).origin == "Rodinia"
        for name in sdk:
            assert benchmark_info(name).origin == "CUDA SDK"

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            build_benchmark("quake3")

    def test_builds_are_deterministic(self):
        a = build_benchmark("vectoradd")[0]
        b = build_benchmark("vectoradd")[0]
        assert np.array_equal(a.globals_init[0], b.globals_init[0])


class TestVectorAdd:
    def test_functional(self, launches):
        l = launches["vectorAdd"]
        out = simulate(CFG, l)
        ref = vectoradd.reference(l.globals_init[vectoradd.A_OFF],
                                  l.globals_init[vectoradd.B_OFF])
        got = out.gmem[vectoradd.C_OFF:vectoradd.C_OFF + vectoradd.N]
        assert np.allclose(got, ref)


class TestScalarProd:
    def test_partials(self, launches):
        l = launches["scalarProd"]
        out = simulate(CFG, l)
        ref = scalarprod.reference(l.globals_init[scalarprod.A_OFF],
                                   l.globals_init[scalarprod.B_OFF])
        got = out.gmem[scalarprod.OUT_OFF:scalarprod.OUT_OFF + scalarprod.GRID]
        assert np.allclose(got, ref)


class TestBlackScholes:
    def test_prices(self, launches):
        l = launches["BlackScholes"]
        out = simulate(CFG, l)
        s = l.globals_init[blackscholes.S_OFF]
        x = l.globals_init[blackscholes.X_OFF]
        t = l.globals_init[blackscholes.T_OFF]
        call, put = blackscholes.reference(s, x, t)
        n = blackscholes.N
        assert np.allclose(out.gmem[blackscholes.CALL_OFF:
                                    blackscholes.CALL_OFF + n], call,
                           rtol=1e-6)
        assert np.allclose(out.gmem[blackscholes.PUT_OFF:
                                    blackscholes.PUT_OFF + n], put,
                           rtol=1e-6)

    def test_sfu_heavy(self, blackscholes_activity):
        act = blackscholes_activity
        assert act.sfu_ops > 0.1 * act.fp_ops


class TestMatMul:
    def test_product(self, launches):
        l = launches["matrixMul"]
        out = simulate(CFG, l)
        ref = matmul.reference(l.globals_init[matmul.A_OFF],
                               l.globals_init[matmul.B_OFF])
        got = out.gmem[matmul.C_OFF:matmul.C_OFF + matmul.DIM ** 2]
        assert np.allclose(got, ref)

    def test_uses_shared_memory(self, launches):
        out = simulate(CFG, launches["matrixMul"])
        assert out.activity.smem_accesses > 0
        assert out.activity.barriers > 0


class TestHotspot:
    def test_stencil(self, launches):
        l = launches["hotspot"]
        out = simulate(CFG, l)
        ref = hotspot.reference(l.globals_init[hotspot.TEMP_OFF],
                                l.globals_init[hotspot.POWER_OFF])
        got = out.gmem[hotspot.OUT_OFF:hotspot.OUT_OFF + hotspot.DIM ** 2]
        assert np.allclose(got, ref)


class TestPathfinder:
    def test_dp_rows(self, launches):
        l = launches["pathfinder"]
        out = simulate(CFG, l)
        ref = pathfinder.reference(l.globals_init[pathfinder.WALL_OFF],
                                   l.globals_init[pathfinder.SRC_OFF])
        got = out.gmem[pathfinder.OUT_OFF:pathfinder.OUT_OFF + pathfinder.COLS]
        assert np.allclose(got, ref)


class TestKmeans:
    def test_transpose(self, launches):
        out = simulate(CFG, launches["kmeans1"])
        feats, _ = kmeans.make_inputs()
        ref = feats.reshape(kmeans.N_POINTS, kmeans.N_FEATURES).T.ravel()
        got = out.gmem[kmeans.FEAT_T_OFF:
                       kmeans.FEAT_T_OFF + kmeans.N_POINTS * kmeans.N_FEATURES]
        assert np.array_equal(got, ref)

    def test_membership(self, launches):
        out = simulate(CFG, launches["kmeans2"])
        feats, cents = kmeans.make_inputs()
        ref = kmeans.reference_membership(feats, cents)
        got = out.gmem[kmeans.MEMBER_OFF:kmeans.MEMBER_OFF + kmeans.N_POINTS]
        assert np.array_equal(got, ref)

    def test_kmeans2_uses_constant_cache(self, launches):
        out = simulate(CFG, launches["kmeans2"])
        assert out.activity.const_reads > 0


class TestBackprop:
    def test_layerforward(self, launches):
        out = simulate(CFG, launches["backprop1"])
        x, w, _, _ = backprop.make_inputs()
        ref = backprop.reference_partials(x, w)
        off = backprop.PARTIAL_OFF
        got = out.gmem[off:off + backprop.GRID * backprop.N_HIDDEN]
        assert np.allclose(got, ref)

    def test_adjust_weights(self, launches):
        out = simulate(CFG, launches["backprop2"])
        x, w, delta, oldw = backprop.make_inputs()
        wref, owref = backprop.reference_weights(x, w, delta, oldw)
        nw = backprop.N_INPUT * backprop.N_HIDDEN
        assert np.allclose(out.gmem[backprop.W_OFF:backprop.W_OFF + nw], wref)
        assert np.allclose(out.gmem[backprop.OLDW_OFF:
                                    backprop.OLDW_OFF + nw], owref)


class TestHeartwall:
    def test_ncc_scores(self, launches):
        out = simulate(CFG, launches["heartwall"])
        wins, tpl = heartwall.make_inputs()
        ref = heartwall.reference(wins, tpl)
        got = out.gmem[heartwall.OUT_OFF:heartwall.OUT_OFF + heartwall.N_POINTS]
        assert np.allclose(got, ref, rtol=1e-5)


class TestMergeSort:
    def test_tile_sort(self, launches):
        out = simulate(CFG, launches["mergeSort1"])
        keys = mergesort.make_inputs()
        ref = mergesort.reference_tile_sort(keys)
        got = out.gmem[mergesort.SORTED_OFF:mergesort.SORTED_OFF + mergesort.N]
        assert np.array_equal(got, ref)

    def test_merge_produces_sorted_pairs(self):
        launches = {l.kernel.name: l for l in build_benchmark("mergesort")}
        keys = mergesort.make_inputs()
        sorted_tiles = mergesort.reference_tile_sort(keys)
        l4 = launches["mergeSort4"]
        l4.globals_init[mergesort.SORTED_OFF] = sorted_tiles
        out = simulate(CFG, l4)
        got = out.gmem[mergesort.MERGED_OFF:mergesort.MERGED_OFF + mergesort.N]
        assert np.array_equal(got, mergesort.reference_merge(sorted_tiles))

    def test_ranks_within_bounds(self, launches):
        out = simulate(CFG, launches["mergeSort2"])
        n_samples = mergesort.N // mergesort.SAMPLE_STRIDE
        ranks = out.gmem[mergesort.RANK_OFF:mergesort.RANK_OFF + n_samples]
        assert (ranks >= 0).all() and (ranks <= mergesort.TILE).all()

    def test_mergesort3_not_repeatable(self, launches):
        """The paper's measurement-artifact kernel is marked in-place."""
        assert not launches["mergeSort3"].repeatable
        assert launches["mergeSort1"].repeatable

    def test_divergent(self, launches):
        out = simulate(CFG, launches["mergeSort2"])
        assert out.activity.divergent_branches > 0


class TestNeedle:
    def test_both_diagonal_kernels(self, launches):
        ref_full = needle.reference_dp(needle.make_inputs())
        for name in ("needle1", "needle2"):
            out = simulate(CFG, launches[name])
            got = out.gmem[:needle.DIM ** 2]
            assert np.allclose(got, ref_full), name

    def test_heavily_divergent(self, launches):
        out = simulate(CFG, launches["needle1"])
        act = out.activity
        assert act.divergent_branches > act.blocks_launched


class TestBfs:
    def test_frontier_expansion(self, launches):
        row, edges, frontier, visited = bfs.make_graph()
        out = simulate(CFG, launches["bfs1"])
        ec = len(edges)
        upd_off = bfs.EDGE_BASE + ec + bfs.N_NODES
        got = out.gmem[upd_off:upd_off + bfs.N_NODES]
        expected = np.zeros(bfs.N_NODES)
        for n in np.nonzero(frontier)[0]:
            for e in range(int(row[n]), int(row[n + 1])):
                nb = int(edges[e])
                if visited[nb] == 0:
                    expected[nb] = 1
        assert np.array_equal(got, expected)

    def test_frontier_cleared(self, launches):
        out = simulate(CFG, launches["bfs1"])
        _, edges, _, _ = bfs.make_graph()
        mask_off = bfs.EDGE_BASE + len(edges)
        assert (out.gmem[mask_off:mask_off + bfs.N_NODES] == 0).all()

    def test_bfs2_builds_next_frontier(self, launches):
        out = simulate(CFG, launches["bfs1"])
        _, edges, _, _ = bfs.make_graph()
        ec = len(edges)
        mask_off = bfs.EDGE_BASE + ec
        upd_off = mask_off + bfs.N_NODES
        vis_off = upd_off + bfs.N_NODES
        upd = out.gmem[upd_off:upd_off + bfs.N_NODES].copy()
        l2 = launches["bfs2"]
        init = dict(l2.globals_init)
        init[upd_off] = upd
        init[mask_off] = np.zeros(bfs.N_NODES)
        from dataclasses import replace
        out2 = simulate(CFG, replace(l2, globals_init=init))
        got_mask = out2.gmem[mask_off:mask_off + bfs.N_NODES]
        assert np.array_equal(got_mask, upd)
        assert (out2.gmem[upd_off:upd_off + bfs.N_NODES] == 0).all()


class TestCrossGPU:
    @pytest.mark.parametrize("name", ["vectorAdd", "matrixMul", "hotspot"])
    def test_same_results_on_gtx580(self, launches, name):
        a = simulate(gt240(), launches[name])
        b = simulate(gtx580(), launches[name])
        assert np.allclose(a.gmem, b.gmem)
