"""Tests for :mod:`repro.analysis`.

Three layers of evidence that the analyzer is trustworthy:

* golden diagnostics -- seeded-broken kernels must each trigger their
  specific rule (and only error out for real defects);
* a cleanliness property -- every bundled workload analyzes with zero
  error-severity findings;
* static-vs-dynamic cross-checks -- the analyzer's memory predictions
  must agree with the cycle backend's observed activity counters.
"""

import json

import pytest

from repro.analysis import (LaunchShape, Severity, analyze_kernel,
                            analyze_launch, compare_static_dynamic,
                            predict_memory, AnalysisManager, RULES,
                            default_passes)
from repro.isa import KernelBuilder, Sreg
from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel, KernelVerificationError
from repro.sim import gt240
from repro.workloads import all_kernel_launches

SHAPE32 = LaunchShape(n_threads=32)


def rules_of(result):
    return {d.rule for d in result.diagnostics}


def errors_of(result):
    return [d for d in result.diagnostics
            if d.severity >= Severity.ERROR]


# ---------------------------------------------------------------------------
# Golden diagnostics: each seeded defect yields its expected rule id.
# ---------------------------------------------------------------------------

class TestGoldenVerifier:
    def test_use_before_def_register(self):
        kb = KernelBuilder("ubd")
        a, b = kb.regs(2)
        kb.iadd(b, a, 1)  # `a` is never written
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert "V001" in rules_of(result)
        assert any(d.rule == "V001" and d.severity >= Severity.ERROR
                   for d in result.diagnostics)

    def test_use_before_def_predicate(self):
        kb = KernelBuilder("ubd_pred")
        p = kb.pred()  # never SETP'd
        kb.bra("end", p)
        kb.label("end")
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert "V002" in rules_of(result)

    def test_out_of_range_branch_target(self):
        kernel = Kernel(name="badbra",
                        instructions=(Instruction("BRA", target=99),
                                      Instruction("EXIT")),
                        n_regs=0, n_preds=0)
        result = analyze_kernel(kernel, SHAPE32)
        assert "V004" in rules_of(result)
        # Structural errors gate the CFG-dependent passes.
        assert result.passes_skipped

    def test_missing_exit(self):
        kernel = Kernel(name="noexit",
                        instructions=(Instruction("NOP"),
                                      Instruction("JMP", target=0)),
                        n_regs=0, n_preds=0)
        result = analyze_kernel(kernel, SHAPE32)
        assert "V006" in rules_of(result)

    def test_clean_kernel_has_no_diagnostics(self):
        kb = KernelBuilder("clean")
        t, a, b, c = kb.regs(4)
        kb.mov(t, Sreg("gtid"))
        kb.ldg(a, t, offset=0)
        kb.ldg(b, t, offset=1024)
        kb.fadd(c, a, b)
        kb.stg(c, t, offset=2048)
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert result.diagnostics == []


class TestGoldenDivergence:
    def test_divergent_barrier(self):
        kb = KernelBuilder("divbar")
        t = kb.reg()
        p = kb.pred()
        kb.mov(t, Sreg("tid"))
        kb.setp("lt", p, t, 32)
        kb.bra("skip", p, sense=False)
        kb.bar()
        kb.label("skip")
        kb.exit()
        result = analyze_kernel(kb.build(), LaunchShape(n_threads=64))
        assert "D001" in rules_of(result)

    def test_uniform_barrier_is_clean(self):
        kb = KernelBuilder("unibar", smem_words=64)
        t = kb.reg()
        kb.mov(t, Sreg("tid"))
        kb.sts(t, t)
        kb.bar()
        kb.exit()
        result = analyze_kernel(kb.build(), LaunchShape(n_threads=64))
        assert "D001" not in rules_of(result)


class TestGoldenRaces:
    def test_write_write_race_same_site(self):
        kb = KernelBuilder("race_ww", smem_words=4)
        z = kb.reg()
        kb.mov(z, 0)
        kb.sts(z, z)  # every thread stores word 0
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert "R001" in rules_of(result)
        assert errors_of(result)

    def test_read_write_race_cross_site(self):
        kb = KernelBuilder("race_rw", smem_words=64)
        t, u, v = kb.regs(3)
        kb.mov(t, Sreg("tid"))
        kb.sts(t, t)       # write s[tid] ...
        kb.iadd(u, t, 1)
        kb.lds(v, u)       # ... read s[tid+1] with no barrier between
        kb.stg(v, t)
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert "R002" in rules_of(result)

    def test_barrier_separates_accesses(self):
        kb = KernelBuilder("race_fixed", smem_words=64)
        t, u, v = kb.regs(3)
        kb.mov(t, Sreg("tid"))
        kb.sts(t, t)
        kb.bar()
        kb.iadd(u, t, 1)
        kb.lds(v, u)
        kb.stg(v, t)
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert {"R001", "R002"}.isdisjoint(rules_of(result))

    def test_out_of_bounds_shared_store(self):
        kb = KernelBuilder("oob", smem_words=8)
        t = kb.reg()
        kb.mov(t, Sreg("tid"))
        kb.sts(t, t)  # threads 8..31 store past smem_words
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert "M003" in rules_of(result)


class TestGoldenMemoryLints:
    def test_strided_smem_flags_bank_conflict(self):
        kb = KernelBuilder("strided", smem_words=128)
        t, a = kb.regs(2)
        kb.mov(t, Sreg("tid"))
        kb.imul(a, t, 4)   # stride 4 over 16 banks -> multi-phase
        kb.sts(t, a)
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert "M001" in rules_of(result)

    def test_strided_global_flags_uncoalesced(self):
        kb = KernelBuilder("gstride")
        t, a, v = kb.regs(3)
        kb.mov(t, Sreg("tid"))
        kb.imul(a, t, 32)  # one 128B segment per lane
        kb.ldg(v, a)
        kb.stg(v, t)
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        assert "M002" in rules_of(result)


class TestDiagnosticsModel:
    def test_rule_catalogue_is_consistent(self):
        for rule_id, rule in RULES.items():
            assert rule.rule_id == rule_id
            assert rule.title

    def test_diagnostic_round_trip(self):
        kb = KernelBuilder("ubd2")
        a, b = kb.regs(2)
        kb.iadd(b, a, 1)
        kb.exit()
        result = analyze_kernel(kb.build(), SHAPE32)
        d = result.diagnostics[0]
        payload = d.to_dict()
        assert payload["rule"] == d.rule
        assert payload["kernel"] == "ubd2"
        assert d.rule in d.format() and "ubd2" in d.format()

    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")


# ---------------------------------------------------------------------------
# Strict assembly: KernelBuilder.finish() gates on the verifier.
# ---------------------------------------------------------------------------

class TestStrictAssembly:
    def _broken_builder(self):
        kb = KernelBuilder("broken")
        a, b = kb.regs(2)
        kb.iadd(b, a, 1)
        kb.exit()
        return kb

    def test_finish_raises_on_error_diagnostics(self):
        with pytest.raises(KernelVerificationError) as excinfo:
            self._broken_builder().finish()
        assert "V001" in str(excinfo.value)
        assert excinfo.value.kernel == "broken"
        assert excinfo.value.diagnostics

    def test_build_is_permissive_by_default(self):
        kernel = self._broken_builder().build()
        assert kernel.name == "broken"

    def test_finish_accepts_clean_kernel(self):
        kb = KernelBuilder("fine")
        t = kb.reg()
        kb.mov(t, Sreg("tid"))
        kb.stg(t, t)
        kb.exit()
        assert kb.finish().name == "fine"


# ---------------------------------------------------------------------------
# Properties over the bundled workloads.
# ---------------------------------------------------------------------------

class TestWorkloadProperties:
    def test_all_workloads_are_error_free(self, launches, gt240_config):
        for label, launch in sorted(launches.items()):
            result = analyze_launch(launch, gt240_config)
            errs = errors_of(result)
            assert not errs, (label,
                              [d.format() for d in errs])

    def test_all_passes_run_on_workloads(self, launches, gt240_config):
        result = analyze_launch(launches["matrixMul"], gt240_config)
        assert len(result.passes_run) == len(default_passes())
        assert not result.passes_skipped

    def test_matmul_predicts_bank_conflicts(self, launches, gt240_config):
        launch = launches["matrixMul"]
        am = AnalysisManager(
            launch.kernel,
            LaunchShape(n_threads=launch.block.count,
                        grid=launch.grid.count,
                        warp_size=gt240_config.warp_size,
                        smem_banks=gt240_config.smem_banks))
        report = predict_memory(am.symbolic, am.shape,
                                launch.kernel.name)
        assert report.smem_comparable
        assert not report.smem_conflict_free


# ---------------------------------------------------------------------------
# Static predictions vs. observed cycle-backend counters.
# ---------------------------------------------------------------------------

class TestCrossCheck:
    #: Pinned pair where both a check list and agreement are guaranteed.
    COMPARABLE = ("vectorAdd", "matrixMul")

    @pytest.mark.parametrize("label", COMPARABLE)
    def test_static_matches_dynamic(self, launches, gt240_config, label):
        cross = compare_static_dynamic(launches[label], gt240_config)
        assert cross.agree is True, cross.to_dict()
        assert cross.checks

    @pytest.mark.parametrize(
        "label", sorted(all_kernel_launches()))
    def test_no_workload_disagrees(self, launches, gt240_config, label):
        """Every bundled workload: wherever the static side is
        comparable, prediction and observed counters must agree
        (``agree`` is None when nothing was comparable)."""
        cross = compare_static_dynamic(launches[label], gt240_config)
        assert cross.agree is not False, cross.to_dict()

    def test_conflict_free_kernel_both_sides_zero(self, launches,
                                                  gt240_config):
        cross = compare_static_dynamic(launches["vectorAdd"],
                                       gt240_config)
        payload = cross.to_dict()
        coalescing = [c for c in payload["checks"]
                      if c["check"] == "global_txn_per_access"]
        assert coalescing and coalescing[0]["ok"]


# ---------------------------------------------------------------------------
# U001: provably uninitialized shared-memory reads.
# ---------------------------------------------------------------------------

class TestUninitShared:
    def test_never_written_words_flagged(self):
        kb = KernelBuilder("u_pos", smem_words=16)
        t, v = kb.regs(2)
        kb.mov(t, Sreg("tid"))
        kb.lds(v, t)
        kb.stg(v, t)
        kb.exit()
        result = analyze_kernel(kb.build(), LaunchShape(n_threads=16))
        findings = [d for d in result.diagnostics if d.rule == "U001"]
        assert findings
        assert findings[0].severity == Severity.WARNING
        assert findings[0].data["n_words"] == 16

    def test_fully_initialized_is_clean(self):
        kb = KernelBuilder("u_neg", smem_words=16)
        t, v = kb.regs(2)
        kb.mov(t, Sreg("tid"))
        kb.sts(t, t)
        kb.bar()
        kb.lds(v, t)
        kb.stg(v, t)
        kb.exit()
        result = analyze_kernel(kb.build(), LaunchShape(n_threads=16))
        assert "U001" not in rules_of(result)

    def test_partial_initialization_flags_the_tail(self):
        kb = KernelBuilder("u_part", smem_words=16)
        t, v = kb.regs(2)
        p = kb.pred()
        kb.mov(t, Sreg("tid"))
        kb.setp("lt", p, t, 8)
        kb.sts(t, t, guard=(p, True))
        kb.bar()
        kb.lds(v, t)
        kb.stg(v, t)
        kb.exit()
        result = analyze_kernel(kb.build(), LaunchShape(n_threads=16))
        findings = [d for d in result.diagnostics if d.rule == "U001"]
        assert findings and findings[0].data["n_words"] == 8
        assert min(findings[0].data["words"]) == 8

    def test_unresolvable_store_makes_no_claim(self):
        # The store's address comes from loaded data: the initialized
        # region is unknowable, so the pass must stay silent (sound).
        kb = KernelBuilder("u_bail", smem_words=16)
        t, a, v = kb.regs(3)
        kb.mov(t, Sreg("tid"))
        kb.ldg(a, t)
        kb.sts(t, a)
        kb.bar()
        kb.lds(v, t)
        kb.stg(v, t)
        kb.exit()
        result = analyze_kernel(kb.build(), LaunchShape(n_threads=16))
        assert "U001" not in rules_of(result)

    def test_pass_is_registered(self):
        assert "uninit-shared" in [p.name for p in default_passes()]


# ---------------------------------------------------------------------------
# The `analysis` experiment driver.
# ---------------------------------------------------------------------------

class TestAnalysisExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import exp_analysis
        return exp_analysis.run()

    def test_covers_every_workload(self, result, launches):
        assert {k["kernel"] for k in result["kernels"]} == set(launches)
        assert result["clean"] is True

    def test_crosschecks_recorded_and_agree(self, result):
        assert len(result["crosschecks"]) == 2
        assert result["crosschecks_agree"] is True

    def test_render_and_artifact(self, result, tmp_path):
        from repro.experiments import exp_analysis
        text = exp_analysis.format_table(result)
        assert "cross-check" in text
        paths = exp_analysis._artifacts(result, tmp_path)
        payload = json.loads(paths[0].read_text(encoding="utf-8"))
        assert payload["clean"] is True
