"""Unit tests for launch geometry and global-memory image building."""

import numpy as np
import pytest

from repro.isa import Dim3, KernelBuilder, KernelLaunch


def tiny_kernel():
    kb = KernelBuilder("t")
    kb.nop()
    return kb.build()


class TestDim3:
    def test_count(self):
        assert Dim3(4, 2, 3).count == 24

    def test_defaults(self):
        assert Dim3(7).count == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Dim3(0)


class TestKernelLaunch:
    def test_total_threads(self):
        launch = KernelLaunch(tiny_kernel(), Dim3(4), Dim3(64))
        assert launch.total_threads == 256

    def test_params_recorded(self):
        launch = KernelLaunch(tiny_kernel(), Dim3(1), Dim3(32),
                              params={"n": 128})
        assert launch.params["n"] == 128

    def test_gmem_grows_to_fit_init(self):
        data = np.ones(100)
        launch = KernelLaunch(tiny_kernel(), Dim3(1), Dim3(32),
                              globals_init={1000: data}, gmem_words=64)
        assert launch.gmem_words >= 1100

    def test_build_global_memory_places_data(self):
        data = np.arange(8, dtype=np.float64)
        launch = KernelLaunch(tiny_kernel(), Dim3(1), Dim3(32),
                              globals_init={16: data}, gmem_words=64)
        gmem = launch.build_global_memory()
        assert len(gmem) == 64
        assert np.array_equal(gmem[16:24], data)
        assert gmem[:16].sum() == 0

    def test_build_is_fresh_each_time(self):
        launch = KernelLaunch(tiny_kernel(), Dim3(1), Dim3(32),
                              globals_init={0: np.ones(4)}, gmem_words=16)
        a = launch.build_global_memory()
        a[0] = 99
        b = launch.build_global_memory()
        assert b[0] == 1.0

    def test_default_repeatable(self):
        launch = KernelLaunch(tiny_kernel(), Dim3(1), Dim3(32))
        assert launch.repeatable is True
