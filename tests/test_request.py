"""Tests for the canonical SimRequest: round-trips, digests, shims.

The redesign's core invariant: a request has ONE identity (its
digest), shared verbatim by the facade, the runner job, the cache key,
and the service's HTTP schema -- and the digest of a pre-refactor
``SimJob`` is byte-identical to the request's, so no cache entry went
stale.
"""

import pytest

from repro import GPUSimPow, SimRequest
from repro.runner import (JobFailure, RunnerError, SimJob, job_key,
                          request_key, run_jobs)
from repro.sim import gt240, gtx580
from tests.conftest import build_vecadd_launch


@pytest.fixture()
def tiny_launch():
    launch, _, _ = build_vecadd_launch(n=64, block=64, grid=1)
    return launch


class TestConstruction:
    def test_needs_kernel_or_launch(self):
        with pytest.raises(ValueError):
            SimRequest(config=gt240())

    def test_rejects_bad_trace_interval(self, tiny_launch):
        with pytest.raises(ValueError):
            SimRequest(config=gt240(), launch=tiny_launch,
                       trace_interval=0.0)

    def test_rejects_bad_timeout(self, tiny_launch):
        with pytest.raises(ValueError):
            SimRequest(config=gt240(), launch=tiny_launch,
                       timeout_s=-1.0)

    def test_label(self, tiny_launch):
        req = SimRequest(config=gt240(), kernel="vectorAdd")
        assert req.label == "vectorAdd@GT240"
        assert SimRequest(config=gt240(), launch=tiny_launch,
                          tag="probe").label == "probe"

    def test_resolve_launch_by_label(self):
        req = SimRequest(config=gt240(), kernel="vectorAdd")
        launch = req.resolve_launch()
        assert launch.kernel.name == "vectorAdd"

    def test_resolve_launch_unknown_label(self):
        req = SimRequest(config=gt240(), kernel="nope")
        with pytest.raises(KeyError):
            req.resolve_launch()

    def test_explicit_launch_wins(self, tiny_launch):
        req = SimRequest(config=gt240(), kernel="vectorAdd",
                         launch=tiny_launch)
        assert req.resolve_launch() is tiny_launch


class TestSerialization:
    def test_minimal_round_trip(self):
        req = SimRequest(config=gt240(), kernel="vectorAdd")
        data = req.to_dict()
        assert set(data) == {"config", "kernel"}
        back = SimRequest.from_dict(data)
        assert back.kernel == "vectorAdd"
        assert back.digest() == req.digest()

    def test_full_round_trip(self, tiny_launch):
        req = SimRequest(config=gtx580(), launch=tiny_launch,
                         max_cycles=1e6, trace_interval=128.0,
                         backend="parallel_cycle",
                         backend_options={"n_shards": 2},
                         timeout_s=30.0, tag="probe",
                         tags={"tenant": "ci"})
        back = SimRequest.from_dict(req.to_dict())
        assert back.trace_interval == 128.0
        assert back.backend == "parallel_cycle"
        assert back.backend_options == {"n_shards": 2}
        assert back.timeout_s == 30.0
        assert back.tag == "probe"
        assert back.tags == {"tenant": "ci"}
        assert back.digest() == req.digest()

    def test_launch_round_trip_is_exact(self, tiny_launch):
        req = SimRequest(config=gt240(), launch=tiny_launch)
        back = SimRequest.from_dict(req.to_dict())
        assert back.resolve_launch().kernel.name == \
            tiny_launch.kernel.name
        assert back.digest() == req.digest()

    def test_unknown_field_rejected(self):
        data = SimRequest(config=gt240(), kernel="vectorAdd").to_dict()
        data["workers"] = 4
        with pytest.raises(ValueError, match="workers"):
            SimRequest.from_dict(data)

    def test_missing_config_rejected(self):
        with pytest.raises(ValueError, match="config"):
            SimRequest.from_dict({"kernel": "vectorAdd"})


class TestDigest:
    def test_matches_job_key(self, tiny_launch):
        """THE compatibility invariant: request digests are the
        pre-existing job_key, so the refactor invalidated no cache."""
        req = SimRequest(config=gt240(), launch=tiny_launch,
                         kernel="tiny")
        job = SimJob(config=gt240(), launch=tiny_launch, kernel="tiny")
        assert req.digest() == job_key(job)
        assert request_key(req) == job_key(job)

    def test_policy_fields_excluded(self, tiny_launch):
        base = SimRequest(config=gt240(), launch=tiny_launch)
        assert SimRequest(config=gt240(), launch=tiny_launch,
                          timeout_s=5.0).digest() == base.digest()
        assert SimRequest(config=gt240(), launch=tiny_launch,
                          tag="x", tags={"a": "b"}).digest() \
            == base.digest()

    def test_result_shaping_fields_included(self, tiny_launch):
        base = SimRequest(config=gt240(), launch=tiny_launch)
        assert SimRequest(config=gt240(), launch=tiny_launch,
                          trace_interval=64.0).digest() != base.digest()
        assert SimRequest(config=gt240(), launch=tiny_launch,
                          backend="analytical").digest() != base.digest()
        assert SimRequest(config=gtx580(),
                          launch=tiny_launch).digest() != base.digest()

    def test_stable_across_processes_shape(self):
        """Label-only requests digest identically however built."""
        a = SimRequest(config=gt240(), kernel="vectorAdd").digest()
        b = SimRequest.from_dict(
            {"config": gt240().to_dict(),
             "kernel": "vectorAdd"}).digest()
        assert a == b


class TestJobConversion:
    def test_round_trip(self, tiny_launch):
        req = SimRequest(config=gt240(), launch=tiny_launch,
                         kernel="tiny", trace_interval=64.0,
                         backend_options=None, timeout_s=9.0)
        job = req.to_job()
        assert isinstance(job, SimJob)
        assert job.trace_interval == 64.0
        assert job.timeout_s == 9.0
        back = job.to_request()
        assert back.digest() == req.digest()
        assert back.timeout_s == 9.0

    def test_from_request_copies_options(self, tiny_launch):
        req = SimRequest(config=gt240(), launch=tiny_launch,
                         backend_options={"k": 1})
        job = SimJob.from_request(req)
        job.backend_options["k"] = 2
        assert req.backend_options == {"k": 1}

    def test_job_executes(self, tiny_launch):
        req = SimRequest(config=gt240(), launch=tiny_launch,
                         kernel="tiny")
        out, = run_jobs([req.to_job()], n_jobs=None, cache=None)
        assert out.activity.issued_instructions > 0


class TestFacadeRequestEntry:
    def test_run_request_matches_keywords(self, tiny_launch):
        sim = GPUSimPow(gt240())
        via_kw = sim.run(tiny_launch)
        via_req = sim.run(request=SimRequest(config=gt240(),
                                             launch=tiny_launch))
        assert via_req.chip_total_w == via_kw.chip_total_w
        assert via_req.performance.cycles == via_kw.performance.cycles

    def test_run_rejects_mixed_forms(self, tiny_launch):
        sim = GPUSimPow(gt240())
        req = SimRequest(config=gt240(), launch=tiny_launch)
        with pytest.raises(ValueError, match="not both"):
            sim.run(tiny_launch, request=req)

    def test_run_rejects_foreign_config(self, tiny_launch):
        sim = GPUSimPow(gt240())
        req = SimRequest(config=gtx580(), launch=tiny_launch)
        with pytest.raises(ValueError):
            sim.run(request=req)

    def test_run_benchmark_request(self):
        sim = GPUSimPow(gt240())
        req = SimRequest(config=gt240(), kernel="vectoradd")
        via_req = sim.run_benchmark(request=req)
        via_kw = sim.run_benchmark("vectoradd")
        assert via_req.benchmark == "vectoradd"
        assert via_req.total_energy_j == via_kw.total_energy_j


class TestFailureSerialization:
    def _failure(self):
        return JobFailure(label="k@GT240", kind="timeout",
                          message="worker died", attempts=2,
                          attempt_durations=[0.5, 0.6])

    def test_job_failure_to_dict(self):
        data = self._failure().to_dict()
        assert data["label"] == "k@GT240"
        assert data["kind"] == "timeout"
        assert data["transient"] is True
        assert data["summary"] == "worker died"
        assert data["attempts"] == 2
        assert data["attempt_durations"] == [0.5, 0.6]

    def test_runner_error_to_dict(self):
        err = RunnerError([self._failure()])
        data = err.to_dict()
        assert data["error"] == "RunnerError"
        assert len(data["failures"]) == 1
        assert data["failures"][0]["kind"] == "timeout"
        assert "1 simulation job(s) failed" in data["message"]


class TestErrorBudgetEdgeCases:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), -0.01, 1.01])
    def test_simrequest_rejects_non_finite_and_out_of_range(self, bad):
        with pytest.raises(ValueError, match="finite fraction"):
            SimRequest(config=gt240(), kernel="vectorAdd",
                       backend="auto", error_budget=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), -0.01, 1.01])
    def test_simjob_rejects_non_finite_and_out_of_range(self, bad):
        with pytest.raises(ValueError, match="finite fraction"):
            SimJob(config=gt240(), kernel="vectorAdd",
                   backend="auto", error_budget=bad)

    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_boundary_budgets_accepted(self, ok):
        request = SimRequest(config=gt240(), kernel="vectorAdd",
                             backend="auto", error_budget=ok)
        assert request.error_budget == ok

    def test_from_dict_rejects_nan_budget_cleanly(self):
        base = SimRequest(config=gt240(), kernel="vectorAdd",
                          backend="auto", error_budget=0.1).to_dict()
        base["error_budget"] = float("nan")
        with pytest.raises(ValueError, match="finite fraction"):
            SimRequest.from_dict(base)
