"""Tests for the reusable kernel-construction idioms."""

import numpy as np
import pytest

from repro.isa import Dim3, KernelBuilder, KernelLaunch, Sreg
from repro.isa.lib import (clamped_neighbor, counted_loop, decompose_2d,
                           grid_stride_loop, load_thread_ids,
                           tree_reduce_smem)
from repro.sim import gt240, simulate

CFG = gt240()


def run(kernel, grid=1, block=64, init=None, gmem=1024, const=None):
    launch = KernelLaunch(kernel, Dim3(grid), Dim3(block),
                          globals_init=init or {}, gmem_words=gmem,
                          const_init=const)
    return simulate(CFG, launch)


class TestLoadThreadIds:
    def test_all_three(self):
        kb = KernelBuilder("ids")
        g, t, c = kb.regs(3)
        load_thread_ids(kb, g, tid=t, ctaid=c)
        kb.stg(g, g, offset=0)
        kb.stg(t, g, offset=128)
        kb.stg(c, g, offset=256)
        out = run(kb.build(), grid=2, block=64)
        assert np.array_equal(out.gmem[:128], np.arange(128))
        assert np.array_equal(out.gmem[128:256],
                              np.tile(np.arange(64), 2))
        assert np.array_equal(out.gmem[256:384],
                              np.repeat([0, 1], 64))


class TestCountedLoop:
    def test_fixed_trip_count(self):
        kb = KernelBuilder("loop")
        g, acc, i = kb.regs(3)
        p = kb.pred()
        load_thread_ids(kb, g)
        kb.mov(acc, 0)
        counted_loop(kb, i, p, 7, lambda: kb.iadd(acc, acc, 2))
        kb.stg(acc, g, offset=0)
        out = run(kb.build())
        assert (out.gmem[:64] == 14).all()

    def test_rejects_zero_trips(self):
        kb = KernelBuilder("bad")
        i = kb.reg()
        with pytest.raises(ValueError):
            counted_loop(kb, i, kb.pred(), 0, lambda: None)

    def test_nested_loops_unique_labels(self):
        kb = KernelBuilder("nest")
        g, acc, i, j = kb.regs(4)
        p, q = kb.pred(), kb.pred()
        load_thread_ids(kb, g)
        kb.mov(acc, 0)
        counted_loop(kb, i, p, 3,
                     lambda: counted_loop(kb, j, q, 4,
                                          lambda: kb.iadd(acc, acc, 1)))
        kb.stg(acc, g, offset=0)
        out = run(kb.build())
        assert (out.gmem[:64] == 12).all()


class TestGridStrideLoop:
    def test_covers_all_elements(self):
        n, block, grid = 512, 64, 2
        kb = KernelBuilder("gsl")
        g, idx, v = kb.regs(3)
        p = kb.pred()
        load_thread_ids(kb, g)

        def body():
            kb.ldg(v, idx, offset=0)
            kb.fmul(v, v, 2.0)
            kb.stg(v, idx, offset=n)

        grid_stride_loop(kb, idx, p, g, n, grid * block, body)
        data = np.arange(n, dtype=np.float64)
        out = run(kb.build(), grid=grid, block=block, init={0: data},
                  gmem=2 * n)
        assert np.array_equal(out.gmem[n:2 * n], 2 * data)


class TestTreeReduce:
    @pytest.mark.parametrize("combine,ref", [
        ("fadd", np.sum), ("fmax", np.max), ("fmin", np.min),
    ])
    def test_reduction_ops(self, combine, ref):
        block = 128
        kb = KernelBuilder("reduce", smem_words=block)
        g, t, stride, a, b, addr = kb.regs(6)
        p = kb.pred()
        load_thread_ids(kb, g, tid=t)
        kb.ldg(a, g, offset=0)
        kb.sts(a, t)
        tree_reduce_smem(kb, t, stride, a, b, addr, p, block,
                         combine=combine)
        kb.setp("eq", p, t, 0)
        kb.lds(a, t, guard=(p, True))
        kb.mov(b, Sreg("ctaid"))
        kb.stg(a, b, offset=512, guard=(p, True))
        rng = np.random.default_rng(3)
        data = rng.standard_normal(256)
        out = run(kb.build(), grid=2, block=block, init={0: data},
                  gmem=1024)
        got = out.gmem[512:514]
        expect = [ref(data[:128]), ref(data[128:])]
        assert np.allclose(got, expect)

    def test_rejects_non_power_of_two(self):
        kb = KernelBuilder("bad", smem_words=96)
        regs = kb.regs(5)
        with pytest.raises(ValueError):
            tree_reduce_smem(kb, *regs, kb.pred(), 96)


class TestIndexHelpers:
    def test_decompose_2d(self):
        kb = KernelBuilder("dec")
        g, x, y = kb.regs(3)
        load_thread_ids(kb, g)
        decompose_2d(kb, g, x, y, width=16)
        kb.stg(x, g, offset=0)
        kb.stg(y, g, offset=64)
        out = run(kb.build())
        assert np.array_equal(out.gmem[:64], np.arange(64) % 16)
        assert np.array_equal(out.gmem[64:128], np.arange(64) // 16)

    def test_clamped_neighbor(self):
        kb = KernelBuilder("clamp")
        g, left, right = kb.regs(3)
        load_thread_ids(kb, g)
        clamped_neighbor(kb, left, g, -1, 64)
        clamped_neighbor(kb, right, g, +1, 64)
        kb.stg(left, g, offset=0)
        kb.stg(right, g, offset=64)
        out = run(kb.build())
        assert out.gmem[0] == 0          # clamped at the low edge
        assert out.gmem[1] == 0
        assert out.gmem[64 + 63] == 63   # clamped at the high edge
        assert out.gmem[64] == 1

    def test_validation(self):
        kb = KernelBuilder("v")
        a, b, c = kb.regs(3)
        with pytest.raises(ValueError):
            decompose_2d(kb, a, b, c, width=0)
        with pytest.raises(ValueError):
            clamped_neighbor(kb, a, b, 1, 0)
