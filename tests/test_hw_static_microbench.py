"""Tests for static-power estimation and the Section III-D microbenchmarks."""

import pytest

from repro.hw.microbench import (derive_energy_per_op, lfsr_kernel,
                                 mandelbrot_kernel, run_cluster_staircase)
from repro.hw.static_power import (gt240_static_idle_ratio,
                                   static_power_by_extrapolation,
                                   static_power_by_idle_ratio)
from repro.hw.virtual_gpu import CARDS
from repro.sim.config import gt240, gtx580
from repro.sim.gpu import GPU


@pytest.fixture(scope="module")
def probe_activity(launches):
    return GPU(gt240()).run(launches["BlackScholes"]).activity


@pytest.fixture(scope="module")
def probe_activity_580(launches):
    return GPU(gtx580()).run(launches["BlackScholes"]).activity


class TestStaticPower:
    def test_extrapolation_recovers_static(self, probe_activity):
        static, p1, p08 = static_power_by_extrapolation(gt240(),
                                                        probe_activity)
        assert static == pytest.approx(CARDS["GT240"].static_w, rel=0.05)
        assert p1 > p08 > static

    def test_idle_ratio_method(self, probe_activity_580):
        ratio = gt240_static_idle_ratio(17.6, 19.5)
        static = static_power_by_idle_ratio(gtx580(), probe_activity_580,
                                            ratio)
        assert static == pytest.approx(CARDS["GTX580"].static_w, rel=0.05)

    def test_ratio_about_90_percent(self):
        """Paper: 'About 90% of the power consumed by the card in this
        state thus seems to be static power.'"""
        assert gt240_static_idle_ratio(17.6, 19.5) == pytest.approx(0.90,
                                                                    abs=0.01)

    def test_ratio_rejects_zero_idle(self):
        with pytest.raises(ValueError):
            gt240_static_idle_ratio(17.6, 0.0)


class TestMicrobenchKernels:
    def test_lane_guard_scales_body_ops_only(self):
        """The 31-vs-1 difference is exactly the guarded body work: 30
        lanes x 96 body ops per warp (loop overhead runs in all lanes
        in both configurations and cancels)."""
        from repro.isa import Dim3, KernelLaunch
        ops = {}
        for lanes in (31, 1):
            launch = KernelLaunch(lfsr_kernel(lanes).build(), Dim3(1),
                                  Dim3(32), gmem_words=4096)
            ops[lanes] = GPU(gt240()).run(launch).activity.int_ops
        body_ops_per_lane = 3 * 8 * 4   # 3 ops x UNROLL x ITERS
        assert ops[31] - ops[1] == 30 * body_ops_per_lane

    def test_same_runtime_both_configs(self):
        """Paper: 'Both configurations have the same execution time.'"""
        from repro.isa import Dim3, KernelLaunch
        cycles = []
        for lanes in (31, 1):
            launch = KernelLaunch(mandelbrot_kernel(lanes).build(),
                                  Dim3(12), Dim3(512), gmem_words=4096)
            cycles.append(GPU(gt240()).run(launch).cycles)
        assert cycles[0] == pytest.approx(cycles[1], rel=0.01)


class TestEnergyDerivation:
    def test_int_energy_near_40pj(self):
        r = derive_energy_per_op(gt240(), "int")
        assert r.energy_per_op_j * 1e12 == pytest.approx(40.0, abs=4.0)

    def test_fp_energy_near_75pj(self):
        r = derive_energy_per_op(gt240(), "fp")
        assert r.energy_per_op_j * 1e12 == pytest.approx(75.0, abs=6.0)

    def test_fp_costs_more_than_int(self):
        r_int = derive_energy_per_op(gt240(), "int")
        r_fp = derive_energy_per_op(gt240(), "fp")
        assert r_fp.energy_per_op_j > r_int.energy_per_op_j

    def test_ops_difference_positive(self):
        r = derive_energy_per_op(gt240(), "int")
        assert r.ops_difference > 0
        assert r.energy_hi_j > r.energy_lo_j


class TestStaircase:
    @pytest.fixture(scope="class")
    def points(self):
        return run_cluster_staircase(gt240())

    def test_one_point_per_core(self, points):
        assert [b for b, _ in points] == list(range(1, 13))

    def test_monotone_increasing(self, points):
        powers = [p for _, p in points]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_cluster_steps_larger_than_core_steps(self, points):
        """The Fig. 4 observation: blocks 2-4 (new clusters) add more
        power than blocks 5-12 (cores in active clusters)."""
        powers = [p for _, p in points]
        steps = [b - a for a, b in zip(powers, powers[1:])]
        cluster_steps = steps[:3]
        core_steps = steps[3:]
        assert min(cluster_steps) > max(core_steps)

    def test_cluster_activation_magnitude(self, points):
        powers = [p for _, p in points]
        steps = [b - a for a, b in zip(powers, powers[1:])]
        cluster_extra = (sum(steps[:3]) / 3) - (sum(steps[3:]) / len(steps[3:]))
        assert cluster_extra == pytest.approx(0.692, rel=0.15)
