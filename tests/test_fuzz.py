"""Tests for the verified kernel fuzzer (repro.analysis.fuzz)."""

import json

import pytest

from repro.analysis import (RULE_GROUPS, RULE_PAIRS, Severity,
                            analyze_kernel, grade_rules, shape_for_launch)
from repro.analysis.fuzz import (FLAVORS, KernelFuzzer, format_report,
                                 run_fuzz)
from repro.sim import gt240


@pytest.fixture(scope="module")
def report():
    """One shared small corpus (module-scoped: the runs are the cost)."""
    return run_fuzz(seed=11, count=40, config=gt240())


class TestGenerator:
    def test_cases_are_deterministic(self):
        fuzzer = KernelFuzzer(5)
        a, b = fuzzer.case(3), fuzzer.case(3)
        assert a.flavor == b.flavor
        assert a.launch.kernel.disassemble() == \
            b.launch.kernel.disassemble()
        assert a.launch.block.count == b.launch.block.count

    def test_different_indices_differ(self):
        fuzzer = KernelFuzzer(5)
        names = {fuzzer.case(i).name for i in range(20)}
        assert len(names) == 20

    def test_all_flavors_reachable(self):
        fuzzer = KernelFuzzer(0)
        seen = {fuzzer.case(i).flavor for i in range(80)}
        assert seen == {name for name, _ in FLAVORS}

    def test_generated_kernels_pass_the_verifier(self):
        fuzzer = KernelFuzzer(23)
        config = gt240()
        for i in range(30):
            case = fuzzer.case(i)
            result = analyze_kernel(
                case.launch.kernel, shape_for_launch(case.launch, config))
            assert not [d for d in result.diagnostics
                        if d.rule.startswith("V")
                        and d.severity >= Severity.ERROR], case.name


class TestHarness:
    def test_corpus_runs_to_count(self, report):
        assert report.valid == 40
        assert report.generated >= report.valid
        assert len(report.records) == 40

    def test_zero_differential_mismatches(self, report):
        assert report.mismatches == []
        assert report.gates["bit_exact"] is True

    def test_race_recall_is_total(self, report):
        assert report.gates["race_recall"] == 1.0
        assert report.gates["ok"] is True

    def test_matrix_covers_every_graded_rule(self, report):
        assert set(report.matrix["rules"]) == set(RULE_PAIRS)
        assert set(report.matrix["groups"]) == set(RULE_GROUPS)
        assert report.matrix["cases"] == 40

    def test_faulting_flavor_agrees_on_the_fault(self, report):
        oob = [r for r in report.records if r["flavor"] == "oob"]
        assert oob, "corpus produced no oob cases"
        assert all(r["fault"] for r in oob)
        assert all("S002" in r["dynamic_rules"] for r in oob)

    def test_parallel_slice_was_checked(self, report):
        assert report.parallel_checked > 0

    def test_report_is_json_serializable(self, report):
        encoded = json.loads(json.dumps(report.to_dict()))
        assert encoded["gates"]["ok"] is True

    def test_format_report_renders(self, report):
        text = format_report(report)
        assert "bit_exact=True" in text
        assert "PASS" in text
        assert "[races]" in text

    def test_budget_cuts_generation_short(self):
        small = run_fuzz(seed=2, count=10_000, budget_s=0.0,
                         config=gt240())
        assert small.valid < 10_000


class TestGradeRules:
    def test_true_positive(self):
        matrix = grade_rules([{"static_rules": ["R001"],
                               "dynamic_rules": ["S003"]}])
        row = matrix["rules"]["R001"]
        assert (row["tp"], row["fp"], row["fn"]) == (1, 0, 0)
        assert row["precision"] == 1.0 and row["recall"] == 1.0

    def test_false_positive(self):
        matrix = grade_rules([{"static_rules": ["M003"],
                               "dynamic_rules": []}])
        row = matrix["rules"]["M003"]
        assert (row["tp"], row["fp"], row["fn"]) == (0, 1, 0)
        assert row["precision"] == 0.0 and row["recall"] is None

    def test_false_negative(self):
        matrix = grade_rules([{"static_rules": [],
                               "dynamic_rules": ["S001"]}])
        row = matrix["rules"]["U001"]
        assert (row["tp"], row["fp"], row["fn"]) == (0, 0, 1)
        assert row["recall"] == 0.0 and row["precision"] is None

    def test_group_absorbs_any_paired_rule(self):
        # R003 (undecidable) alone still counts as a race prediction.
        matrix = grade_rules([{"static_rules": ["R003"],
                               "dynamic_rules": ["S003"]}])
        assert matrix["groups"]["races"]["tp"] == 1
        assert matrix["groups"]["races"]["recall"] == 1.0

    def test_empty_records(self):
        matrix = grade_rules([])
        assert matrix["cases"] == 0
        for row in matrix["rules"].values():
            assert row["precision"] is None and row["recall"] is None
