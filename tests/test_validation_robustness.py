"""Robustness of the validation statistics across measurement noise.

The headline error numbers must come from the model discrepancy, not
from a lucky draw of sensor tolerances: re-running the testbed with
different manufactured channels and noise must leave the per-kernel
errors nearly unchanged.
"""

import numpy as np
import pytest

from repro import gt240, validate_suite

SUBSET = ["BlackScholes", "vectorAdd", "matrixMul", "hotspot", "bfs2",
          "mergeSort1"]


@pytest.fixture(scope="module")
def suites():
    return [validate_suite(gt240(), kernel_names=SUBSET, seed=s)
            for s in (101, 202, 303)]


class TestSeedRobustness:
    def test_average_error_stable(self, suites):
        avgs = [s.average_relative_error for s in suites]
        assert max(avgs) - min(avgs) < 0.02

    def test_per_kernel_errors_stable(self, suites):
        for idx, name in enumerate(SUBSET):
            errs = [s.kernels[idx].relative_error for s in suites]
            assert max(errs) - min(errs) < 0.03, name

    def test_over_under_pattern_stable(self, suites):
        patterns = [
            tuple(k.overestimated for k in s.kernels) for s in suites
        ]
        assert len(set(patterns)) == 1

    def test_hardware_static_stable(self, suites):
        statics = [s.hardware_static_w for s in suites]
        assert max(statics) - min(statics) < 1.5

    def test_measured_values_do_vary(self, suites):
        """The noise is real -- measurements differ between testbeds."""
        totals = {round(s.kernels[0].measured_total_w, 6) for s in suites}
        assert len(totals) == 3
