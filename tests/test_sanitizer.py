"""Tests for the runtime sanitizer (repro.sim.sanitizer).

Golden findings per rule (S001-S004), the pure-observer contract
(sanitizing changes no result byte and no cache key), and determinism
across execution engines (serial, 1-shard and 4-shard parallel, runner
pool, cached replay).
"""

import numpy as np
import pytest

from repro.backends import BackendError, get_backend
from repro.isa import KernelBuilder, Sreg
from repro.isa.launch import Dim3, KernelLaunch
from repro.request import SimRequest
from repro.runner import ResultCache, SimJob, run_jobs
from repro.runner.cache import job_key, request_key, request_signature
from repro.sim import SimulationDeadlock, gt240
from repro.workloads import all_kernel_launches


def _launch(kb, threads, grid=1, gmem_words=256):
    return KernelLaunch(kernel=kb.build(), grid=Dim3(grid, 1, 1),
                        block=Dim3(threads, 1, 1),
                        gmem_words=gmem_words)


def race_ww_launch(grid=1):
    """Every thread stores to shared word 0: write-write race."""
    kb = KernelBuilder("san_ww", smem_words=4)
    z, v, g = kb.regs(3)
    kb.mov(z, 0)
    kb.mov(v, Sreg("tid"))
    kb.sts(v, z)
    kb.mov(g, Sreg("gtid"))
    kb.stg(v, g)
    kb.exit()
    return _launch(kb, 32, grid=grid)


def race_rw_launch():
    """Store s[tid], read s[tid+1 mod 32], no barrier: rw race."""
    kb = KernelBuilder("san_rw", smem_words=32)
    t, u, v, g = kb.regs(4)
    kb.mov(t, Sreg("tid"))
    kb.sts(t, t)
    kb.iadd(u, t, 1)
    kb.and_(u, u, 31)
    kb.lds(v, u)
    kb.mov(g, Sreg("gtid"))
    kb.stg(v, g)
    kb.exit()
    return _launch(kb, 32)


def barrier_fixed_launch():
    """The rw pattern with a barrier between store and load: clean."""
    kb = KernelBuilder("san_fixed", smem_words=32)
    t, u, v, g = kb.regs(4)
    kb.mov(t, Sreg("tid"))
    kb.sts(t, t)
    kb.bar()
    kb.iadd(u, t, 1)
    kb.and_(u, u, 31)
    kb.lds(v, u)
    kb.mov(g, Sreg("gtid"))
    kb.stg(v, g)
    kb.exit()
    return _launch(kb, 32)


def uninit_launch():
    """Loads shared words no store in the kernel ever writes."""
    kb = KernelBuilder("san_uninit", smem_words=16)
    t, v, g = kb.regs(3)
    kb.mov(t, Sreg("tid"))
    kb.lds(v, t)
    kb.mov(g, Sreg("gtid"))
    kb.stg(v, g)
    kb.exit()
    return _launch(kb, 16)


def oob_launch():
    """32 threads store through tid into 8 shared words: 24 lanes OOB."""
    kb = KernelBuilder("san_oob", smem_words=8)
    t = kb.reg()
    kb.mov(t, Sreg("tid"))
    kb.sts(t, t)
    kb.exit()
    return _launch(kb, 32)


def _sanitize(launch, backend="cycle", **kw):
    return get_backend(backend).simulate(gt240(), launch, sanitize=True,
                                         **kw)


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


class TestGoldenFindings:
    def test_write_write_race_s003(self):
        out = _sanitize(race_ww_launch())
        races = [d for d in out.diagnostics if d.rule == "S003"]
        assert races, out.diagnostics
        assert any("write-write" in d.message for d in races)
        assert all(d.severity.name == "ERROR" for d in races)

    def test_read_write_race_s003(self):
        out = _sanitize(race_rw_launch())
        races = [d for d in out.diagnostics if d.rule == "S003"]
        assert races
        assert any("read-write" in d.message for d in races)

    def test_barrier_separation_is_clean(self):
        out = _sanitize(barrier_fixed_launch())
        assert out.diagnostics == []

    def test_uninitialized_read_s001(self):
        out = _sanitize(uninit_launch())
        assert "S001" in _rules(out.diagnostics)
        finding = next(d for d in out.diagnostics if d.rule == "S001")
        assert finding.data["n_words"] == 16

    def test_out_of_bounds_s002_rides_the_abort(self):
        with pytest.raises(IndexError) as excinfo:
            _sanitize(oob_launch())
        diags = excinfo.value.sanitizer_diagnostics
        assert "S002" in _rules(diags)
        oob = next(d for d in diags if d.rule == "S002")
        assert "out of bounds" in oob.message

    def test_deadlock_watchdog_s004(self, monkeypatch):
        from repro.sim.shard import ShardEngine

        def stuck(self, horizon, max_cycles, kernel_name):
            raise SimulationDeadlock("all live warps stuck at a barrier")

        monkeypatch.setattr(ShardEngine, "step_epoch", stuck)
        with pytest.raises(SimulationDeadlock) as excinfo:
            _sanitize(barrier_fixed_launch())
        diags = excinfo.value.sanitizer_diagnostics
        assert "S004" in _rules(diags)

    def test_racy_data_still_executes(self):
        # The sanitizer observes; it never changes what the kernel
        # computed (races in a single warp are deterministic).
        plain = get_backend("cycle").simulate(gt240(), race_ww_launch())
        sanitized = _sanitize(race_ww_launch())
        assert np.array_equal(plain.gmem, sanitized.gmem)

    def test_unsupported_backend_refuses(self):
        job = SimJob(config=gt240(), kernel="san_uninit",
                     launch=uninit_launch(), backend="analytical",
                     sanitize=True)
        with pytest.raises(BackendError):
            job.execute()


class TestPureObserver:
    """sanitize=True changes no result byte on a clean workload."""

    @pytest.fixture(scope="class")
    def pair(self):
        launch = all_kernel_launches()["vectorAdd"]
        plain = get_backend("cycle").simulate(gt240(), launch)
        sanitized = get_backend("cycle").simulate(gt240(), launch,
                                                  sanitize=True)
        return plain, sanitized

    def test_clean_workload_no_findings(self, pair):
        plain, sanitized = pair
        assert plain.diagnostics is None
        assert sanitized.diagnostics == []

    def test_cycles_identical(self, pair):
        plain, sanitized = pair
        assert plain.cycles == sanitized.cycles

    def test_activity_identical(self, pair):
        plain, sanitized = pair
        assert plain.activity.as_dict() == sanitized.activity.as_dict()

    def test_memory_image_identical(self, pair):
        plain, sanitized = pair
        assert np.array_equal(plain.gmem, sanitized.gmem)


class TestEngineDeterminism:
    """Same kernel, same findings: serial, sharded, pooled, replayed."""

    def _dicts(self, diagnostics):
        return [d.to_dict() for d in diagnostics]

    @pytest.mark.parametrize("launch_fn", [race_ww_launch, race_rw_launch,
                                           uninit_launch])
    def test_parallel_cycle_matches_serial(self, launch_fn):
        serial = self._dicts(_sanitize(launch_fn()).diagnostics)
        for shards in (1, 4):
            out = get_backend("parallel_cycle").simulate(
                gt240(), launch_fn(), sanitize=True, n_shards=shards)
            assert self._dicts(out.diagnostics) == serial, shards

    def test_multi_block_races_merge_across_shards(self):
        launch = race_ww_launch(grid=4)
        serial = self._dicts(_sanitize(launch).diagnostics)
        out = get_backend("parallel_cycle").simulate(
            gt240(), race_ww_launch(grid=4), sanitize=True, n_shards=4)
        assert self._dicts(out.diagnostics) == serial

    def test_runner_pool_and_replay(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = gt240()

        def job():
            return SimJob(config=config, kernel="san_rw",
                          launch=race_rw_launch(), sanitize=True)

        first, = run_jobs([job()], n_jobs=2, cache=cache)
        again, = run_jobs([job()], n_jobs=1, cache=cache)
        assert first.diagnostics and again.diagnostics
        assert self._dicts(first.diagnostics) == \
            self._dicts(again.diagnostics)
        # A sanitized job never answers from cache (the cached entry
        # has no diagnostics to give)...
        assert not again.cached
        # ...but it still populates the cache for unsanitized repeats.
        plain, = run_jobs([SimJob(config=config, kernel="san_rw",
                                  launch=race_rw_launch())], cache=cache)
        assert plain.cached
        assert plain.activity.as_dict() == first.activity.as_dict()


class TestCacheKeyInvariance:
    """`sanitize` is an observer flag: excluded from every digest."""

    def _request(self, sanitize):
        return SimRequest(config=gt240(), kernel="vectorAdd",
                          sanitize=sanitize)

    def test_request_signature_unchanged(self):
        assert request_signature(self._request(True)) == \
            request_signature(self._request(False))

    def test_request_key_unchanged(self):
        assert request_key(self._request(True)) == \
            request_key(self._request(False))

    def test_job_key_unchanged(self):
        launch = all_kernel_launches()["vectorAdd"]
        plain = SimJob(config=gt240(), kernel="vectorAdd", launch=launch)
        sanitized = SimJob(config=gt240(), kernel="vectorAdd",
                           launch=launch, sanitize=True)
        assert job_key(plain) == job_key(sanitized)

    def test_wire_roundtrip_preserves_sanitize(self):
        request = self._request(True)
        clone = SimRequest.from_dict(request.to_dict())
        assert clone.sanitize is True
        assert clone.digest() == self._request(False).digest()

    def test_to_dict_omits_default(self):
        assert "sanitize" not in self._request(False).to_dict()
        assert self._request(True).to_dict()["sanitize"] is True

    def test_job_carries_flag_from_request(self):
        assert self._request(True).to_job().sanitize is True
        assert self._request(False).to_job().sanitize is False
