#!/usr/bin/env python
"""Regenerate the packaged surrogate calibration tables.

Calibrates the ``surrogate`` backend against the exact ``cycle``
backend over all Table I workloads for each hardware preset, and
writes the resulting tables into ``src/repro/backends/calibdata/`` --
the content-addressed fallback :class:`repro.backends.CalibrationStore`
serves when no user-local table exists, which is what makes
``--backend auto`` work out of the box.

Run from the repository root after any change that alters simulation
results (a :data:`repro.SIM_VERSION` bump) or the surrogate model
(a :data:`~repro.backends.surrogate.SURROGATE_VERSION` bump)::

    PYTHONPATH=src python tools/gen_calibration.py [--jobs N]

Cycle results come through the pooled, cached runner, so regeneration
against a warm cache takes seconds.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.backends.surrogate import calibrate_surrogate  # noqa: E402
from repro.sim.config import PRESETS  # noqa: E402

CALIBDATA = (Path(__file__).resolve().parent.parent
             / "src" / "repro" / "backends" / "calibdata")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for cycle simulations")
    parser.add_argument("--preset", action="append", default=None,
                        help="preset name (default: all presets)")
    args = parser.parse_args()

    names = args.preset or sorted(PRESETS)
    for name in names:
        config = PRESETS[name]()
        print(f"calibrating surrogate for {config.name} "
              f"(all Table I workloads)...")
        table = calibrate_surrogate(config, jobs=args.jobs)
        path = CALIBDATA / table.config_key[:2] \
            / f"{table.config_key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(table.to_dict(), handle, sort_keys=True, indent=1)
            handle.write("\n")
        print(f"  {len(table.entries)} kernels, "
              f"LOO mean {table.loo_mean:.1%} / max {table.loo_max:.1%}"
              f" -> {path.relative_to(CALIBDATA.parent)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
