"""Bench: fleet scenario throughput (requests simulated per second).

Runs the seeded diurnal scenario end-to-end -- load generation,
ladder-resolved kernel costs, dispatch, and the energy ledger -- and
reports how many fleet requests per wall-clock second the simulator
sustains.  The ladder is what makes the number interesting: at the
default 10% error budget every (gpu, kernel) pair resolves below the
cycle tier, so a thousand-request day costs seconds, not hours.

Numbers land in ``BENCH_fleet.json`` (override with
``$BENCH_FLEET_JSON``) so CI can archive them per machine.
"""

import json
import os
import time

from benchmarks.conftest import pedantic_once
from repro.fleet import FleetScenario, run_scenario

#: The benched scenario: a mixed 4-GPU fleet over a simulated day.
SCENARIO = dict(name="bench-fleet",
                gpus=["GTX580", "GTX580", "GT240", "GT240"],
                duration_s=86_400.0, n_requests=500, seed=0,
                error_budget=0.10)


def _write_report(stats):
    path = os.environ.get("BENCH_FLEET_JSON", "BENCH_fleet.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nfleet bench report written to {path}")


def test_bench_fleet(benchmark):
    scenario = FleetScenario.from_dict(SCENARIO)

    # Warm the cost cache once so the bench times the steady state the
    # CI job and CLI users actually see on a second run.
    warm = run_scenario(scenario, cache="auto")

    def measure():
        start = time.perf_counter()
        report = run_scenario(scenario, cache="auto")
        elapsed = time.perf_counter() - start
        ledger = report.ledger
        return {
            "scenario": dict(SCENARIO),
            "requests": ledger.requests,
            "gpus": len(ledger.gpus),
            "elapsed_s": elapsed,
            "requests_per_s": ledger.requests / elapsed,
            "kwh": report.kwh,
            "sub_cycle_fraction": report.sub_cycle_fraction,
            "backend_requests": report.backend_requests,
        }

    stats = pedantic_once(benchmark, measure)
    _write_report(stats)
    print(f"fleet {stats['requests']} requests on {stats['gpus']} GPUs "
          f"in {stats['elapsed_s']:.2f}s  "
          f"({stats['requests_per_s']:.0f} req/s, "
          f"{stats['kwh']:.2f} kWh)")

    # Determinism: the warm and benched runs are the same arithmetic.
    assert stats["kwh"] == warm.kwh
    # The ladder's promise at a 10% budget: the fleet never waits on
    # the cycle tier for the bulk of its traffic.
    assert stats["sub_cycle_fraction"] >= 0.90
    # Sanity floor: a ladder-resolved fleet must be far faster than
    # one cycle-simulation per request.
    assert stats["requests_per_s"] >= 10
