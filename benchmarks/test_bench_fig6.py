"""Bench: regenerate Fig. 6a/6b and the Section V-A error statistics.

The heavyweight harness: all 19 kernels simulated and "measured" on both
GPUs.  Asserts the paper's headline claims as shapes:

* average relative error about 10-12% on both cards (paper: 11.7% GT240,
  10.8% GTX580);
* dynamic-only error 2-3x larger (paper: 28.3% / 20.9%);
* the simulator overestimates the large majority of kernels;
* BlackScholes is among the underestimated kernels on the GT240;
* the worst GT240 kernel is mergeSort3 (the measurement artifact), with
  a 25-40% error (paper: 35.4%);
* simulated static power tracks the hardware estimate closely.
"""

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_fig6


@pytest.fixture(scope="module")
def fig6_result():
    return exp_fig6.run()


def test_bench_fig6(benchmark, fig6_result):
    # Re-run under the benchmark for timing; asserted on the shared run.
    result = pedantic_once(benchmark, exp_fig6.run)
    print()
    print(exp_fig6.format_table(result))

    for gpu, paper in exp_fig6.PAPER_STATS.items():
        suite = result.suite(gpu)
        # Headline: ~10-12% average relative error on total power.
        assert suite.average_relative_error == pytest.approx(
            paper["avg_rel_error"], abs=0.025), gpu
        # Dynamic-only error is substantially larger.
        assert suite.average_dynamic_error > 1.5 * suite.average_relative_error
        # Overestimation dominates.
        assert suite.overestimate_fraction >= 0.7, gpu
        # Static power: simulated vs hardware-estimated agree closely.
        assert suite.simulated_static_w == pytest.approx(
            suite.hardware_static_w, rel=0.06), gpu

    gt = result.suite("GT240")
    # BlackScholes underestimated on GT240 (one of the paper's two).
    bs = next(k for k in gt.kernels if k.kernel == "BlackScholes")
    assert not bs.overestimated
    # Worst GT240 kernel is the mergeSort3 measurement artifact.
    assert gt.worst_kernel == "mergeSort3"
    assert 0.2 < gt.max_relative_error < 0.45

    # GTX580 absolute magnitudes: high-end card, 100-350 W totals.
    g5 = result.suite("GTX580")
    totals = [k.simulated_total_w for k in g5.kernels]
    assert 90 < min(totals) and max(totals) < 350
    # And far above the GT240's 20-70 W range.
    gt_totals = [k.simulated_total_w for k in gt.kernels]
    assert max(gt_totals) < 80
    assert min(totals) > max(gt_totals)
