"""Bench: sanitizer overhead and the large fuzz corpus.

Two measurements land in ``BENCH_fuzz.json`` (override with
``$BENCH_FUZZ_JSON``):

* **Sanitizer overhead** -- the Table IV suite simulated plain and with
  ``sanitize=True`` on the serial cycle backend.  The sanitizer is a
  pure observer on the memory path, so it must stay within a 3x
  wall-clock envelope (the acceptance bar; in practice it is far
  cheaper because shadow updates are vectorized per access batch).
* **Corpus scale** -- a 500-kernel seeded fuzz run.  The differential
  harness must report zero cycle-vs-reference mismatches and total
  race recall at this scale, not just in the 40-case unit fixture.
"""

import json
import os
import time

from benchmarks.conftest import pedantic_once
from repro.analysis.fuzz import run_fuzz
from repro.backends import get_backend
from repro.sim import gt240
from repro.workloads import all_kernel_launches

#: Same 4-kernel Table IV suite the runner/backends benches use.
SUITE = ["BlackScholes", "heartwall", "pathfinder", "hotspot"]

CORPUS_SEED = 1337
CORPUS_COUNT = 500


def _write_report(stats):
    path = os.environ.get("BENCH_FUZZ_JSON", "BENCH_fuzz.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nfuzz bench report written to {path}")


def test_bench_fuzz(benchmark):
    config = gt240()
    launches = all_kernel_launches()
    cycle = get_backend("cycle")

    def measure():
        plain_s = {}
        start = time.perf_counter()
        for name in SUITE:
            cycle.simulate(config, launches[name])
            plain_s[name] = time.perf_counter() - start - \
                sum(plain_s.values())
        plain_total = time.perf_counter() - start

        sanitized_s = {}
        start = time.perf_counter()
        for name in SUITE:
            cycle.simulate(config, launches[name], sanitize=True)
            sanitized_s[name] = time.perf_counter() - start - \
                sum(sanitized_s.values())
        sanitized_total = time.perf_counter() - start

        start = time.perf_counter()
        report = run_fuzz(seed=CORPUS_SEED, count=CORPUS_COUNT,
                          config=config)
        fuzz_s = time.perf_counter() - start

        return {
            "suite": SUITE,
            "gpu": config.name,
            "plain_s": plain_total,
            "sanitized_s": sanitized_total,
            "overhead_x": sanitized_total / plain_total,
            "per_kernel_plain_s": plain_s,
            "per_kernel_sanitized_s": sanitized_s,
            "corpus_seed": CORPUS_SEED,
            "corpus_count": CORPUS_COUNT,
            "corpus_s": fuzz_s,
            "corpus_valid": report.valid,
            "corpus_mismatches": len(report.mismatches),
            "corpus_gates": report.gates,
            "corpus_matrix": report.matrix,
        }

    stats = pedantic_once(benchmark, measure)
    _write_report(stats)
    print(f"plain {stats['plain_s']:.2f}s  "
          f"sanitized {stats['sanitized_s']:.2f}s  "
          f"overhead {stats['overhead_x']:.2f}x  "
          f"corpus {stats['corpus_valid']} kernels in "
          f"{stats['corpus_s']:.1f}s")

    # The observer contract in wall-clock terms: shadow-memory updates
    # may not triple the simulation.
    assert stats["overhead_x"] <= 3.0
    # At 500 kernels the differential harness must still be spotless.
    assert stats["corpus_valid"] == CORPUS_COUNT
    assert stats["corpus_mismatches"] == 0
    assert stats["corpus_gates"]["ok"] is True
    assert stats["corpus_gates"]["race_recall"] == 1.0
