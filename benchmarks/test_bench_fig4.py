"""Bench: regenerate Fig. 4 (cluster-activation power staircase)."""

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_fig4


def test_bench_fig4(benchmark):
    result = pedantic_once(benchmark, exp_fig4.run)
    print()
    print(exp_fig4.format_table(result))

    powers = [p for _, p in result.points]
    steps = result.steps

    # 12 runs, monotone increasing power.
    assert len(result.points) == 12
    assert all(b > a for a, b in zip(powers, powers[1:]))

    # Blocks 2-4 light new clusters: bigger steps than blocks 5-12.
    assert min(steps[:3]) > max(steps[3:])

    # The cluster-activation delta ~0.692 W (paper's Fig. 4 reading).
    assert result.cluster_step_w == pytest.approx(
        exp_fig4.PAPER_CLUSTER_STEP_W, rel=0.15)

    # The very first block adds the global scheduler (~3.34 W) on top.
    assert result.scheduler_w == pytest.approx(
        exp_fig4.PAPER_SCHEDULER_W, rel=0.15)
    first_step = powers[0] - result.active_idle_w
    assert first_step > 3 * max(steps[3:])
