"""Bench: the Section II measured-vs-architectural model comparison."""

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_statmodel


def test_bench_statmodel(benchmark):
    c = pedantic_once(benchmark, exp_statmodel.run)
    print()
    print(exp_statmodel.format_table(c))

    # "Superior accuracy for the architecture it was built from":
    # the fitted model clearly beats GPUSimPow on its home card.
    assert c.stat_heldout_gt240.average_error < 0.08
    assert (c.stat_heldout_gt240.average_error
            < c.gpusimpow_gt240.average_error)

    # "Lacks the capability to make accurate predictions about GPUs with
    # other architectural parameters": transfer error is many times the
    # architectural model's.
    assert c.stat_transfer_gtx580.average_error > 0.4
    assert (c.stat_transfer_gtx580.average_error
            > 4 * c.gpusimpow_gtx580.average_error)

    # The combined analytical+empirical model stays in its ~10% band on
    # both cards.
    assert c.gpusimpow_gt240.average_error < 0.15
    assert c.gpusimpow_gtx580.average_error < 0.15
