"""Bench: the sharded ``parallel_cycle`` backend against serial cycle.

Runs the Table IV suite on the GTX580 (the chip with enough clusters to
shard meaningfully) through the serial ``cycle`` backend and through
``parallel_cycle`` with 4 forked shard workers at the default epoch,
and measures both sides of the trade: wall-clock speedup and the cycle
/ power error the relaxed epoch synchronization introduces.  Numbers
land in ``BENCH_parallel.json`` (override with ``$BENCH_PARALLEL_JSON``)
so CI can archive them per machine.

The error gates are asserted on every machine -- accuracy does not
depend on core count.  The speedup assertion is gated on the runner
having >= 4 CPUs: four shard processes on one core can only time-slice.
"""

import json
import os
import time

from benchmarks.conftest import pedantic_once
from repro.backends import get_backend
from repro.power.chip import Chip
from repro.sim import gtx580
from repro.workloads import all_kernel_launches

import pytest

#: Same 4-kernel Table IV suite the runner/backends benches use.
SUITE = ["BlackScholes", "heartwall", "pathfinder", "hotspot"]

N_SHARDS = 4
N_CPUS = os.cpu_count() or 1


def _write_report(stats):
    path = os.environ.get("BENCH_PARALLEL_JSON", "BENCH_parallel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nparallel bench report written to {path}")


def test_bench_parallel(benchmark):
    config = gtx580()
    launches = all_kernel_launches()
    chip = Chip(config)
    cycle = get_backend("cycle")
    parallel = get_backend("parallel_cycle")

    def measure():
        serial = {}
        start = time.perf_counter()
        for name in SUITE:
            serial[name] = cycle.simulate(config, launches[name])
        serial_s = time.perf_counter() - start

        sharded = {}
        start = time.perf_counter()
        for name in SUITE:
            sharded[name] = parallel.simulate(
                config, launches[name], n_shards=N_SHARDS, processes=True)
        parallel_s = time.perf_counter() - start

        cycle_err, power_err = {}, {}
        for name in SUITE:
            ref, par = serial[name], sharded[name]
            cycle_err[name] = abs(par.cycles - ref.cycles) / ref.cycles
            w_ref = chip.evaluate(ref.activity).chip_total_w
            w_par = chip.evaluate(par.activity).chip_total_w
            power_err[name] = abs(w_par - w_ref) / w_ref
        return {
            "suite": SUITE,
            "gpu": config.name,
            "cpus": N_CPUS,
            "n_shards": N_SHARDS,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s,
            "cycle_abs_rel_error": cycle_err,
            "mean_abs_cycle_error": sum(cycle_err.values()) / len(cycle_err),
            "max_abs_cycle_error": max(cycle_err.values()),
            "power_abs_rel_error": power_err,
            "mean_abs_power_error": sum(power_err.values()) / len(power_err),
            "max_abs_power_error": max(power_err.values()),
        }

    stats = pedantic_once(benchmark, measure)
    _write_report(stats)
    print(f"serial {stats['serial_s']:.2f}s  "
          f"parallel({N_SHARDS}) {stats['parallel_s']:.2f}s  "
          f"speedup {stats['speedup']:.2f}x  "
          f"mean |cycle err| {stats['mean_abs_cycle_error'] * 100:.2f}%  "
          f"mean |power err| {stats['mean_abs_power_error'] * 100:.2f}%")

    # Accuracy gates hold on any machine: the relaxation error is a
    # property of the epoch contract, not of the host.
    assert stats["mean_abs_cycle_error"] <= 0.02
    assert stats["mean_abs_power_error"] <= 0.03
    if N_CPUS >= 4:
        # Four shard workers on four real cores: the per-core event
        # loops dominate, barriers are cheap -- expect a 2x win.
        assert stats["speedup"] >= 2.0
    else:
        pytest.skip(f"{N_CPUS}-CPU runner: shard speedup not asserted "
                    "(numbers recorded in BENCH_parallel.json)")
