"""Bench: regenerate the Section III-D per-operation energies."""

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_microbench


def test_bench_microbench(benchmark):
    result = pedantic_once(benchmark, exp_microbench.run)
    print()
    print(exp_microbench.format_table(result))

    # Paper: "approximately 40 pJ" integer, "about 75 pJ" floating point.
    assert result.int_pj == pytest.approx(exp_microbench.PAPER_INT_PJ,
                                          abs=4.0)
    assert result.fp_pj == pytest.approx(exp_microbench.PAPER_FP_PJ,
                                         abs=6.0)
    # FP costs roughly 2x INT, and both bracket NVIDIA's 50 pJ/FLOP
    # figure the way the paper discusses.
    assert 1.5 < result.fp_pj / result.int_pj < 2.5
    assert result.int_pj < exp_microbench.NVIDIA_REPORTED_FP_PJ < result.fp_pj
