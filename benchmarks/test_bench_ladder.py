"""Bench: the surrogate rung of the fidelity ladder, held-out.

Calibrates the surrogate on the GTX580 using every evaluation kernel
*except* the Table IV power-dissection suite, then predicts that
held-out suite -- the honest version of the accuracy number (the
in-sample error is ~0 because a calibration member's nearest neighbour
is itself).  Gates the ladder's contract: held-out mean |chip power
error| within the surrogate's promised band, and the zero-execution
query at least 50x faster than even the analytical estimator.

Numbers land in ``BENCH_ladder.json`` (override with
``$BENCH_LADDER_JSON``) so CI can archive them per machine.

The surrogate side is timed over many repetitions: single queries are
in the microseconds, far below timer noise.
"""

import json
import os
import time

from benchmarks.conftest import pedantic_once
from repro.backends import get_backend
from repro.backends.surrogate import (CalibrationStore, calibrate_surrogate,
                                      clear_table_memo)
from repro.power.chip import Chip
from repro.sim import gtx580
from repro.workloads import all_kernel_launches

#: The held-out evaluation suite (same 4 kernels every bench quotes).
SUITE = ["BlackScholes", "heartwall", "pathfinder", "hotspot"]

#: Repetitions for the warm surrogate/analytical timing loops.
TIMING_REPS = 20


def _write_report(stats):
    path = os.environ.get("BENCH_LADDER_JSON", "BENCH_ladder.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nladder bench report written to {path}")


def _time_suite(backend, config, launches, reps):
    """Best suite wall-clock over ``reps`` warm repetitions."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for name in SUITE:
            backend.simulate(config, launches[name])
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_ladder(benchmark, tmp_path, monkeypatch):
    # Hermetic calibration store: this bench must prove the held-out
    # table it just built, not whatever table the environment carries.
    monkeypatch.setenv("REPRO_CALIB_DIR", str(tmp_path / "calib"))
    clear_table_memo()

    config = gtx580()
    launches = all_kernel_launches()
    held_in = sorted(set(launches) - set(SUITE))
    chip = Chip(config)

    def measure():
        table = calibrate_surrogate(config, held_in)
        CalibrationStore().save(table)

        surrogate = get_backend("surrogate")
        analytical = get_backend("analytical")
        cycle = get_backend("cycle")

        errors = {}
        for name in SUITE:
            w_cyc = chip.evaluate(
                cycle.simulate(config, launches[name]).activity).chip_total_w
            w_est = chip.evaluate(
                surrogate.simulate(config,
                                   launches[name]).activity).chip_total_w
            errors[name] = abs(w_est - w_cyc) / w_cyc

        # Warm both estimators once, then race them.
        _time_suite(surrogate, config, launches, 1)
        _time_suite(analytical, config, launches, 1)
        surrogate_s = _time_suite(surrogate, config, launches, TIMING_REPS)
        analytical_s = _time_suite(analytical, config, launches,
                                   TIMING_REPS)

        return {
            "suite": SUITE,
            "held_in": held_in,
            "gpu": config.name,
            "calibration": {"kernels": len(table.entries),
                            "loo_mean": table.loo_mean,
                            "loo_max": table.loo_max},
            "surrogate_s": surrogate_s,
            "analytical_s": analytical_s,
            "speedup_vs_analytical": analytical_s / surrogate_s,
            "power_abs_rel_error": errors,
            "mean_abs_power_error": sum(errors.values()) / len(errors),
            "max_abs_power_error": max(errors.values()),
        }

    stats = pedantic_once(benchmark, measure)
    _write_report(stats)
    print(f"held-out mean |power err| "
          f"{stats['mean_abs_power_error'] * 100:.1f}%  "
          f"surrogate {stats['surrogate_s'] * 1e3:.2f}ms  "
          f"analytical {stats['analytical_s'] * 1e3:.2f}ms  "
          f"{stats['speedup_vs_analytical']:.0f}x")

    # The ladder's accuracy contract, on kernels the table never saw:
    # Table IV chip power within the promised ~10% band on average.
    assert stats["mean_abs_power_error"] <= 0.10
    assert stats["max_abs_power_error"] <= 0.25
    # The rung's reason to exist: far cheaper than the next rung up.
    assert stats["speedup_vs_analytical"] >= 50
    clear_table_memo()
