"""Bench: regenerate Table V (blackscholes power breakdown, GT240)."""

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_table5


def test_bench_table5(benchmark):
    table = pedantic_once(benchmark, exp_table5.run)
    print()
    print(exp_table5.format_table(table))

    # GPU level: cores dominate at ~82%, then NoC > MC > PCIe.
    total = sum(table.gpu_level["Overall"])
    shares = {name: sum(vals) / total
              for name, vals in table.gpu_level.items()}
    assert shares["Cores"] == pytest.approx(0.822, abs=0.03)
    assert shares["NoC"] > shares["Memory Controller"] > \
        shares["PCIe Controller"]

    # Core level: undifferentiated+base biggest, then execution units
    # (~24%), register file (~12%), WCU smallest (~6%).
    core_total = sum(table.core_level["Overall"])
    cshare = {name: sum(vals) / core_total
              for name, vals in table.core_level.items()}
    assert cshare["Undiff. Core"] == pytest.approx(0.383, abs=0.03)
    assert cshare["Execution Units"] == pytest.approx(0.244, abs=0.03)
    assert cshare["Register File"] == pytest.approx(0.123, abs=0.02)
    assert cshare["WCU"] == pytest.approx(0.056, abs=0.02)
    assert cshare["WCU"] == min(
        v for k, v in cshare.items() if k != "Overall")

    # DRAM footnote ~4.3 W, excluded from the chip totals.
    assert table.dram_w == pytest.approx(4.3, abs=1.0)
