"""Bench: regenerate Table IV (static power and area, both GPUs)."""

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_table4


def test_bench_table4(benchmark):
    rows = pedantic_once(benchmark, exp_table4.run)
    print()
    print(exp_table4.format_table(rows))
    paper = exp_table4.PAPER_TABLE4
    for gpu, row in rows.items():
        # Simulated static power within a few percent of the paper's.
        assert row.sim_static_w == pytest.approx(
            paper[gpu]["sim_static_w"], rel=0.03), gpu
        # Simulated vs "hardware" static power agree (the paper's
        # headline Table IV result: 1.7% on GT240, near-exact GTX580).
        assert row.sim_static_w == pytest.approx(row.real_static_w,
                                                 rel=0.07), gpu
        # Modeled area underestimates the real die (unmodeled blocks).
        assert row.sim_area_mm2 < row.real_area_mm2, gpu
    # GTX580 is the far bigger, hotter chip in both columns.
    assert rows["GTX580"].sim_static_w > 4 * rows["GT240"].sim_static_w
    assert rows["GTX580"].sim_area_mm2 > 2.5 * rows["GT240"].sim_area_mm2
