"""Bench: the design-choice ablations DESIGN.md calls out."""

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_ablations


def test_bench_scoreboard_ablation(benchmark):
    barrel, scoreboard = pedantic_once(benchmark,
                                       exp_ablations.scoreboard_ablation)
    # A scoreboarded front-end extracts more ILP: fewer cycles, at a
    # higher power draw, but lower energy per kernel.
    assert scoreboard.cycles < barrel.cycles
    assert scoreboard.chip_dynamic_w > barrel.chip_dynamic_w
    assert scoreboard.energy_mj < barrel.energy_mj * 1.05


def test_bench_scheduler_ablation(benchmark):
    points = pedantic_once(benchmark, exp_ablations.scheduler_ablation)
    by_label = {p.label: p for p in points}
    rr = by_label["scheduler rr"]
    # All policies issue the same work; rotating priority (the paper's
    # baseline) hides latency best on the regular tiled kernel.
    assert rr.cycles <= min(p.cycles for p in points)
    # Faster schedule -> higher power draw, similar or better energy.
    for p in points:
        if p.cycles > rr.cycles:
            assert p.chip_dynamic_w < rr.chip_dynamic_w * 1.02


def test_bench_regfile_ablation(benchmark):
    points = pedantic_once(benchmark, exp_ablations.regfile_ablation)
    dyn = [p.chip_dynamic_w for p in points]
    # More banks -> more leaky, more switching periphery: monotone power.
    assert dyn == sorted(dyn)


def test_bench_coalescing_ablation(benchmark):
    on, off = pedantic_once(benchmark, exp_ablations.coalescing_ablation)
    # Disabling coalescing inflates transactions: >1.5x slower and
    # substantially more energy for the stencil workload.
    assert off.cycles > 1.5 * on.cycles
    assert off.energy_mj > 1.5 * on.energy_mj


def test_bench_warp_size_ablation(benchmark):
    points = pedantic_once(benchmark, exp_ablations.warp_size_ablation)
    by_label = {p.label: p for p in points}
    # Narrower warps underutilise the fetch bandwidth on this regular
    # kernel: warp 32 is no slower than warp 16.
    assert by_label["warp 32"].cycles <= by_label["warp 16"].cycles


def test_bench_node_scaling(benchmark):
    points = pedantic_once(benchmark, exp_ablations.node_scaling)
    by_node = {p.node_nm: p for p in points}
    # Shrinking 40 nm -> 28 nm: area drops superlinearly; static power
    # drops despite the leakier devices (smaller cells dominate).
    assert by_node[28].area_mm2 < 0.7 * by_node[40].area_mm2
    assert by_node[28].static_w < by_node[40].static_w
    assert by_node[45].static_w > by_node[40].static_w
