"""Bench: the analytical backend against the cycle-accurate reference.

Runs the Table IV suite through both backends on the GTX580 (the larger
chip, where the per-cycle loop is most expensive) and measures the
speed/accuracy trade the ``analytical`` backend buys: wall-clock
speedup of the estimator over the full simulation, and the absolute
relative error of the resulting chip total power.  Numbers land in
``BENCH_backends.json`` (override with ``$BENCH_BACKENDS_JSON``) so CI
can archive them per machine.

The analytical side is timed best-of-3: its runs are in the
milliseconds, where a single sample is noise-dominated.
"""

import json
import os
import time

from benchmarks.conftest import pedantic_once
from repro.backends import get_backend
from repro.power.chip import Chip
from repro.sim import gtx580
from repro.workloads import all_kernel_launches

#: Same 4-kernel Table IV suite the runner bench uses.
SUITE = ["BlackScholes", "heartwall", "pathfinder", "hotspot"]


def _write_report(stats):
    path = os.environ.get("BENCH_BACKENDS_JSON", "BENCH_backends.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nbackends bench report written to {path}")


def test_bench_backends(benchmark):
    config = gtx580()
    launches = all_kernel_launches()
    chip = Chip(config)
    cycle = get_backend("cycle")
    analytical = get_backend("analytical")

    def run_suite(backend):
        return {name: backend.simulate(config, launches[name])
                for name in SUITE}

    def measure():
        start = time.perf_counter()
        cyc = run_suite(cycle)
        cycle_s = time.perf_counter() - start

        ana_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            ana = run_suite(analytical)
            ana_s = min(ana_s, time.perf_counter() - start)

        errors = {}
        for name in SUITE:
            w_cyc = chip.evaluate(cyc[name].activity).chip_total_w
            w_ana = chip.evaluate(ana[name].activity).chip_total_w
            errors[name] = abs(w_ana - w_cyc) / w_cyc
        return {
            "suite": SUITE,
            "gpu": config.name,
            "cycle_s": cycle_s,
            "analytical_s": ana_s,
            "speedup": cycle_s / ana_s,
            "power_abs_rel_error": errors,
            "mean_abs_power_error": sum(errors.values()) / len(errors),
            "max_abs_power_error": max(errors.values()),
        }

    stats = pedantic_once(benchmark, measure)
    _write_report(stats)
    print(f"cycle {stats['cycle_s']:.2f}s  "
          f"analytical {stats['analytical_s'] * 1e3:.1f}ms  "
          f"speedup {stats['speedup']:.0f}x  "
          f"mean |power err| {stats['mean_abs_power_error'] * 100:.1f}%")

    # The estimator's reason to exist: orders of magnitude faster...
    assert stats["speedup"] > 100
    # ...while staying in the same power regime as the reference.
    assert stats["mean_abs_power_error"] < 0.20
    assert stats["max_abs_power_error"] < 0.35
