"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures through ``pytest-benchmark`` (run with ``--benchmark-only``) and
asserts the reproduction's *shape*: who wins, by what rough factor, and
where the qualitative observations of the paper hold.
"""

import pytest


def pedantic_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
