"""Bench: the parallel simulation runner and the activity result cache.

Times the same 4-kernel suite through the execution paths -- serial,
cold process pool, warm process pool, warm cache -- and the
cold-vs-warm cost of a full experiment driver (``exp_fig6``) on top of
the cache.  The cold pool pays a fork + interpreter warmup per worker;
the warm pool (``repro.runner.pool``) recycles workers across
``run_jobs`` calls, which is where the parallel path has to earn its
keep on short jobs.  The measured numbers are written to
``BENCH_runner.json`` (override the location with ``$BENCH_RUNNER_JSON``)
so CI can archive them per machine.

Speedup assertions are gated on the runner's core count: single-CPU
machines still measure and record everything but only assert the
cache-path invariants, which hold everywhere.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_fig6
from repro.runner import ResultCache, SimJob, run_jobs
from repro.runner.pool import shared_pool, shutdown_shared_pool
from repro.sim import gt240
from repro.workloads import all_kernel_launches

#: Four mid-weight kernels with roughly balanced runtimes, so the pool's
#: wall clock is not dominated by one straggler.
SUITE = ["BlackScholes", "heartwall", "pathfinder", "hotspot"]

N_CPUS = os.cpu_count() or 1


def _time(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _write_report(stats):
    path = os.environ.get("BENCH_RUNNER_JSON", "BENCH_runner.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
    print(f"\nrunner bench report written to {path}")


def test_bench_runner(benchmark, tmp_path_factory):
    launches = all_kernel_launches()
    jobs = [SimJob(config=gt240(), kernel=name, launch=launches[name])
            for name in SUITE]
    cache = ResultCache(tmp_path_factory.mktemp("runner_cache"))
    fig6_cache = ResultCache(tmp_path_factory.mktemp("fig6_cache"))
    workers = min(4, N_CPUS)

    def measure():
        serial_s = _time(lambda: run_jobs(jobs, n_jobs=1, cache=None))
        shutdown_shared_pool()  # first pooled run measures cold spawns
        parallel_s = _time(lambda: run_jobs(jobs, n_jobs=workers,
                                            cache=None))
        # Second pooled pass reuses the workers the first one spawned:
        # this is the steady-state cost sweeps actually pay.
        parallel_warm_s = _time(lambda: run_jobs(jobs, n_jobs=workers,
                                                 cache=cache))
        pool = shared_pool()
        recycled = pool.recycled
        warm_s = _time(lambda: run_jobs(jobs, n_jobs=1, cache=cache))
        fig6_cold_s = _time(lambda: exp_fig6.run(kernel_names=SUITE,
                                                 cache=fig6_cache))
        fig6_warm_s = _time(lambda: exp_fig6.run(kernel_names=SUITE,
                                                 cache=fig6_cache))
        return {
            "suite": SUITE,
            "cpus": N_CPUS,
            "workers": workers,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "parallel_warm_s": parallel_warm_s,
            "cache_hit_s": warm_s,
            "parallel_speedup": serial_s / parallel_s,
            "parallel_warm_speedup": serial_s / parallel_warm_s,
            "pool_workers_recycled": recycled,
            "cache_speedup": serial_s / max(warm_s, 1e-9),
            "fig6_cold_s": fig6_cold_s,
            "fig6_warm_s": fig6_warm_s,
            "fig6_cache_speedup": fig6_cold_s / max(fig6_warm_s, 1e-9),
        }

    stats = pedantic_once(benchmark, measure)
    _write_report(stats)
    print(f"serial {stats['serial_s']:.2f}s  "
          f"pool({workers}) cold {stats['parallel_s']:.2f}s "
          f"warm {stats['parallel_warm_s']:.2f}s  "
          f"cache {stats['cache_hit_s'] * 1e3:.1f}ms  "
          f"fig6 {stats['fig6_cold_s']:.2f}s -> {stats['fig6_warm_s']:.2f}s")

    # The warm pool must actually recycle: the second pooled pass runs
    # on workers the first one spawned.  (With one worker the engine
    # runs in-process and the pool is never touched.)
    if workers >= 2:
        assert stats["pool_workers_recycled"] >= 1
    # A warm cache skips simulation entirely; hits are file reads and
    # must beat re-simulating by a wide margin on any machine.
    assert stats["cache_speedup"] > 10
    # Warm-cache experiment reruns only pay for measurement + power
    # model; the paper-artifact loop must get markedly cheaper.
    assert stats["fig6_cache_speedup"] > 2.5
    if N_CPUS >= 4:
        # Four balanced jobs on four cores: expect a real speedup, and
        # recycled workers must not be slower than cold ones.
        assert stats["parallel_speedup"] > 1.5
        assert stats["parallel_warm_speedup"] > 1.5
        assert stats["fig6_cache_speedup"] > 5
    elif N_CPUS == 1:
        pytest.skip("single-CPU runner: parallel speedup not asserted "
                    "(numbers recorded in BENCH_runner.json)")
