"""Bench: regenerate Table II (architecture key features)."""

from benchmarks.conftest import pedantic_once
from repro.experiments import exp_table2


def test_bench_table2(benchmark):
    rows = pedantic_once(benchmark, exp_table2.run)
    print()
    print(exp_table2.format_table(rows))
    # Shape: the presets must match the paper's configuration table.
    for gpu, expected in exp_table2.PAPER_TABLE2.items():
        for feature, value in expected.items():
            assert rows[gpu][feature] == value, (gpu, feature)
