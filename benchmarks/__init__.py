"""Benchmark harness package: one bench per paper table/figure."""
